// Dependence-oracle tests (src/check).
//
// Positive: every scheme, serial and threaded, over probe kernels in 1D/2D/3D
// must produce a clean oracle report with every point checked exactly once
// per timestep — including the completeness sweep — and the threaded CATS
// schemes must actually record happens-before edges.
//
// Negative: intentionally broken schedules (a skipped neighbor row, tiles in
// reversed order, a recomputed row, a missing publish) must each be reported
// as the *exact* violated dependence — kind, point, timestep, offending
// neighbor, thread pair — not merely "something failed".

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "baseline/cache_oblivious.hpp"
#include "check/oracle.hpp"
#include "check/probe_kernel.hpp"
#include "core/run.hpp"
#include "kernels/const2d.hpp"
#include "threads/progress.hpp"

using namespace cats;
using check::DepOracle;
using check::Violation;
using check::ViolationKind;

namespace {

RunOptions probe_options(Scheme scheme, int threads, DepOracle* oracle) {
  RunOptions opt;
  opt.scheme = scheme;
  opt.threads = threads;
  opt.cache_bytes = 32 * 1024;
  opt.oracle = oracle;
  // Force small tiles so even tiny domains split across tiles/chunks.
  opt.tz_override = 4;
  opt.bz_override = 8;
  opt.bx_override = 8;
  return opt;
}

}  // namespace

// ---------------------------------------------------------------------------
// Positive: all schemes validate clean
// ---------------------------------------------------------------------------

TEST(OraclePositive, AllSchemes1D) {
  const int W = 48, T = 11;
  for (Scheme s : {Scheme::Naive, Scheme::Cats1, Scheme::PlutoLike}) {
    for (int p : {1, 4}) {
      check::ProbeKernel1D k(W, 1);
      DepOracle oracle(W, 1, 1, k.slope(), p);
      run(k, T, probe_options(s, p, &oracle));
      oracle.check_complete(T);
      EXPECT_TRUE(oracle.ok()) << scheme_name(s) << " p=" << p;
      EXPECT_EQ(oracle.points_checked(), static_cast<std::int64_t>(W) * T)
          << scheme_name(s) << " p=" << p;
    }
  }
}

TEST(OraclePositive, AllSchemes2D) {
  const int W = 24, H = 40, T = 9;
  for (Scheme s :
       {Scheme::Naive, Scheme::Cats1, Scheme::Cats2, Scheme::PlutoLike}) {
    for (int p : {1, 4}) {
      check::ProbeKernel2D k(W, H, 1);
      DepOracle oracle(W, H, 1, k.slope(), p);
      run(k, T, probe_options(s, p, &oracle));
      oracle.check_complete(T);
      EXPECT_TRUE(oracle.ok()) << scheme_name(s) << " p=" << p;
      EXPECT_EQ(oracle.points_checked(),
                static_cast<std::int64_t>(W) * H * T)
          << scheme_name(s) << " p=" << p;
    }
  }
}

TEST(OraclePositive, AllSchemes3D) {
  const int W = 12, H = 20, D = 20, T = 7;
  for (Scheme s : {Scheme::Naive, Scheme::Cats1, Scheme::Cats2, Scheme::Cats3,
                   Scheme::PlutoLike}) {
    for (int p : {1, 4}) {
      check::ProbeKernel3D k(W, H, D, 1);
      DepOracle oracle(W, H, D, k.slope(), p);
      run(k, T, probe_options(s, p, &oracle));
      oracle.check_complete(T);
      EXPECT_TRUE(oracle.ok()) << scheme_name(s) << " p=" << p;
      EXPECT_EQ(oracle.points_checked(),
                static_cast<std::int64_t>(W) * H * D * T)
          << scheme_name(s) << " p=" << p;
    }
  }
}

TEST(OraclePositive, CacheObliviousBaseline) {
  const int T = 10;
  check::ProbeKernel2D k(24, 32, 1);
  DepOracle oracle(24, 32, 1, k.slope(), 1);
  run_cache_oblivious(k, T, &oracle);
  oracle.check_complete(T);
  EXPECT_TRUE(oracle.ok());
  EXPECT_EQ(oracle.points_checked(), 24ll * 32 * T);
}

TEST(OraclePositive, SlopeTwoStencil) {
  const int W = 40, T = 8;
  for (Scheme s : {Scheme::Cats1, Scheme::Cats2}) {
    check::ProbeKernel2D k(W, W, 2);
    DepOracle oracle(W, W, 1, k.slope(), 4);
    run(k, T, probe_options(s, 4, &oracle));
    oracle.check_complete(T);
    EXPECT_TRUE(oracle.ok()) << scheme_name(s);
  }
}

// Threaded CATS1 synchronizes through ProgressCell publishes and chunk
// barriers; the oracle must see those happens-before edges, or the clean
// report above would be vacuous.
TEST(OraclePositive, ThreadedCats1RecordsEdges) {
  check::ProbeKernel2D k(24, 64, 1);
  DepOracle oracle(24, 64, 1, k.slope(), 4);
  run(k, 8, probe_options(Scheme::Cats1, 4, &oracle));
  EXPECT_TRUE(oracle.ok());
  EXPECT_GT(oracle.release_count(), 0);
  EXPECT_GT(oracle.acquire_count(), 0);
  EXPECT_GT(oracle.barrier_count(), 0);
  EXPECT_FALSE(oracle.edges().empty());
}

TEST(OraclePositive, ThreadedCats2RecordsDoneFlagEdges) {
  check::ProbeKernel2D k(64, 24, 1);
  DepOracle oracle(64, 24, 1, k.slope(), 4);
  run(k, 8, probe_options(Scheme::Cats2, 4, &oracle));
  EXPECT_TRUE(oracle.ok());
  EXPECT_GT(oracle.release_count(), 0);  // DoneFlag::set
  EXPECT_GT(oracle.acquire_count(), 0);  // DoneFlag::wait
}

// opt.validate wraps the run in a temporary oracle and aborts on violation;
// a correct schedule over a real kernel must pass straight through and still
// produce the right numbers.
TEST(OraclePositive, ValidateModeRealKernel) {
  ConstStar2D<1> ref(20, 28, default_star2d_weights<1>());
  ref.init([](int x, int y) { return 0.01 * x - 0.02 * y; }, 0.25);
  ConstStar2D<1> k(20, 28, default_star2d_weights<1>());
  k.init([](int x, int y) { return 0.01 * x - 0.02 * y; }, 0.25);

  RunOptions plain;
  plain.scheme = Scheme::Cats2;
  plain.threads = 4;
  plain.cache_bytes = 32 * 1024;
  run(ref, 6, plain);

  RunOptions validated = plain;
  validated.validate = true;
  run(k, 6, validated);

  std::vector<double> want, got;
  ref.copy_result_to(want, 6);
  k.copy_result_to(got, 6);
  EXPECT_EQ(want, got);
}

// ---------------------------------------------------------------------------
// Negative: injected schedule bugs, each caught as the exact dependence
// ---------------------------------------------------------------------------

// Skip one row's point at t=1, then advance everything to t=2: the points
// beside the hole are missing their t=1 neighbor, the hole itself never
// advanced.
TEST(OracleNegative, SkippedNeighborIsCaughtPrecisely) {
  const int W = 8;
  DepOracle oracle(W, 1, 1, /*slope=*/1, 1);
  oracle.on_row(0, 1, 0, 0, 0, 3);      // t=1: x in [0,3)
  oracle.on_row(0, 1, 0, 0, 4, W);      // t=1: x in [4,8) — x=3 skipped
  oracle.on_row(0, 2, 0, 0, 0, W);      // t=2: full row over the hole

  EXPECT_FALSE(oracle.ok());
  const std::vector<Violation> vs = oracle.violations();
  ASSERT_EQ(vs.size(), 3u);

  // x=2 at t=2 reads the never-written neighbor x=3.
  EXPECT_EQ(vs[0].kind, ViolationKind::MissingDep);
  EXPECT_EQ(vs[0].x, 2);
  EXPECT_EQ(vs[0].t, 2);
  EXPECT_EQ(vs[0].nx, 3);
  EXPECT_EQ(vs[0].expected_t, 1);
  EXPECT_EQ(vs[0].found_t, -1);     // t=1's parity slot was never written
  EXPECT_EQ(vs[0].writer_tid, -1);  // still initial data

  // x=3 itself is asked to compute t=2 with no t=1 in its history.
  EXPECT_EQ(vs[1].kind, ViolationKind::NotAdvanced);
  EXPECT_EQ(vs[1].x, 3);
  EXPECT_EQ(vs[1].expected_t, 1);
  EXPECT_EQ(vs[1].found_t, -1);

  // x=4 reads the hole from the other side.
  EXPECT_EQ(vs[2].kind, ViolationKind::MissingDep);
  EXPECT_EQ(vs[2].x, 4);
  EXPECT_EQ(vs[2].nx, 3);
}

// Two tiles processed in reverse dependence order (the "reversed diamond"
// bug): the right tile runs through t=2 first, then the left tile starts
// t=1. The right tile's t=2 misses its left neighbor, and the left tile's
// t=1 finds its input overwritten by the right tile's t=2 (the
// double-buffer WAR hazard).
TEST(OracleNegative, ReversedTileOrderIsCaught) {
  const int W = 8;
  DepOracle oracle(W, 1, 1, /*slope=*/1, 1);
  oracle.on_row(0, 1, 0, 0, 4, W);  // right tile, t=1
  oracle.on_row(0, 2, 0, 0, 4, W);  // right tile, t=2 — too early
  oracle.on_row(0, 1, 0, 0, 0, 4);  // left tile, t=1 — too late

  EXPECT_FALSE(oracle.ok());
  const std::vector<Violation> vs = oracle.violations();
  ASSERT_EQ(vs.size(), 2u);

  // Right tile's x=4 computes t=2 before its left neighbor reached t=1.
  EXPECT_EQ(vs[0].kind, ViolationKind::MissingDep);
  EXPECT_EQ(vs[0].x, 4);
  EXPECT_EQ(vs[0].t, 2);
  EXPECT_EQ(vs[0].nx, 3);
  EXPECT_EQ(vs[0].expected_t, 1);

  // Left tile's x=3 computes t=1 but x=4 already holds t=2 in the slot that
  // should still carry the t=0 input.
  EXPECT_EQ(vs[1].kind, ViolationKind::FutureOverwrite);
  EXPECT_EQ(vs[1].x, 3);
  EXPECT_EQ(vs[1].t, 1);
  EXPECT_EQ(vs[1].nx, 4);
  EXPECT_EQ(vs[1].expected_t, 0);
  EXPECT_EQ(vs[1].found_t, 2);
}

TEST(OracleNegative, DoubleComputeIsCaught) {
  const int W = 6;
  DepOracle oracle(W, 1, 1, /*slope=*/1, 1);
  oracle.on_row(0, 1, 0, 0, 0, W);
  oracle.on_row(0, 1, 0, 0, 2, 3);  // x=2 recomputed at t=1

  EXPECT_FALSE(oracle.ok());
  const std::vector<Violation> vs = oracle.violations();
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].kind, ViolationKind::DoubleCompute);
  EXPECT_EQ(vs[0].x, 2);
  EXPECT_EQ(vs[0].t, 1);
  EXPECT_EQ(vs[0].found_t, 1);
}

// Thread 1 consumes thread 0's t=1 values without any recorded publish/wait
// edge: every value exists, so only the happens-before check can object —
// and it must name the exact thread pair.
TEST(OracleNegative, MissingPublishIsCaught) {
  const int W = 6;
  DepOracle oracle(W, 1, 1, /*slope=*/1, 2);
  std::thread a([&] { oracle.on_row(0, 1, 0, 0, 0, W); });
  a.join();  // real ordering — but no edge recorded with the oracle
  std::thread b([&] { oracle.on_row(1, 2, 0, 0, 0, W); });
  b.join();

  EXPECT_FALSE(oracle.ok());
  const std::vector<Violation> vs = oracle.violations();
  ASSERT_FALSE(vs.empty());
  for (const Violation& v : vs) {
    EXPECT_EQ(v.kind, ViolationKind::UnorderedRead);
    EXPECT_EQ(v.t, 2);
    EXPECT_EQ(v.reader_tid, 1);
    EXPECT_EQ(v.writer_tid, 0);
  }
}

// Positive twin of the above: the same cross-thread hand-off through a real
// ProgressCell publish/wait_ge is clean.
TEST(OraclePositive, PublishedHandOffIsClean) {
  const int W = 6;
  DepOracle oracle(W, 1, 1, /*slope=*/1, 2);
  ProgressCell cell;
  std::thread a([&] {
    const check::ScopedOracleThread bind(&oracle, 0);
    oracle.on_row(0, 1, 0, 0, 0, W);
    cell.publish(1);
  });
  std::thread b([&] {
    const check::ScopedOracleThread bind(&oracle, 1);
    cell.wait_ge(1);
    oracle.on_row(1, 2, 0, 0, 0, W);
  });
  a.join();
  b.join();
  EXPECT_TRUE(oracle.ok()) << oracle.violation_count() << " violations";
  EXPECT_EQ(oracle.release_count(), 1);
  EXPECT_EQ(oracle.acquire_count(), 1);
}

TEST(OracleNegative, IncompleteScheduleIsCaught) {
  const int W = 4;
  DepOracle oracle(W, 1, 1, /*slope=*/1, 1);
  oracle.on_row(0, 1, 0, 0, 0, W);
  oracle.on_row(0, 2, 0, 0, 0, 2);  // x=2,3 never reach T=2
  oracle.check_complete(2);

  const std::vector<Violation> vs = oracle.violations();
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_EQ(vs[0].kind, ViolationKind::Incomplete);
  EXPECT_EQ(vs[0].x, 2);
  EXPECT_EQ(vs[0].expected_t, 2);
  EXPECT_EQ(vs[0].found_t, 0);  // parity-0 slot still holds initial data
  EXPECT_EQ(vs[1].x, 3);
}

TEST(OracleNegative, OutOfDomainRowIsCaught) {
  DepOracle oracle(8, 4, 1, /*slope=*/1, 1);
  oracle.on_row(0, 1, /*y=*/4, 0, 0, 8);  // y == height
  EXPECT_FALSE(oracle.ok());
  const std::vector<Violation> vs = oracle.violations();
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].kind, ViolationKind::OutOfDomain);
  EXPECT_EQ(vs[0].y, 4);
  EXPECT_EQ(oracle.points_checked(), 0);
}

TEST(OracleDiagnostics, ToStringNamesTheDependence) {
  const int W = 8;
  DepOracle oracle(W, 1, 1, /*slope=*/1, 1);
  oracle.on_row(0, 1, 0, 0, 0, 3);
  oracle.on_row(0, 1, 0, 0, 4, W);
  oracle.on_row(0, 2, 0, 0, 0, W);
  const std::vector<Violation> vs = oracle.violations();
  ASSERT_FALSE(vs.empty());
  const std::string s = vs[0].to_string();
  EXPECT_NE(s.find("missing-dep"), std::string::npos) << s;
  EXPECT_NE(s.find("(2,0,0)"), std::string::npos) << s;
  EXPECT_NE(s.find("(3,0,0)"), std::string::npos) << s;
  EXPECT_NE(s.find("t=2"), std::string::npos) << s;
}
