// Ablation: how Eq. 1 (TZ) and Eq. 2 (BZ) sizing interacts with performance.
// Sweeps the chunk height / diamond width around the formula's choice and
// prints wall time + simulated DRAM traffic, validating that the formula
// lands near the optimum (the "cache accurate" design point).

#include "cachesim/cache_model.hpp"
#include "cachesim/trace_kernel.hpp"
#include "common.hpp"
#include "kernels/const2d.hpp"

using namespace cats;
using namespace cats::bench;

int main(int argc, char** argv) {
  const BenchConfig cfg = bench_config(argc, argv);
  print_banner(std::cout, "Ablation: TZ / BZ sizing vs. Eq. 1 / Eq. 2");
  const int side = cfg.full ? 4096 : 2048;
  const int T = 50;
  const double n = static_cast<double>(side) * side;
  RunOptions base = options_for(cfg, Scheme::Cats1);
  const std::size_t z = resolve_cache_bytes(base);
  const DomainShape shape{static_cast<std::int64_t>(side) * side, side, side, 2};
  const int tz_star = compute_tz(z, shape, {1, 2.8});
  std::cout << "domain " << side << "^2, T=" << T << ", Z=" << fmt_mib(z)
            << ", Eq.1 TZ=" << tz_star << "\n\n";

  {
    Table t({"TZ", "seconds", "GFLOPS", "sim. DRAM GB", "note"});
    for (double f : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      const int tz = std::max(1, static_cast<int>(tz_star * f));
      RunOptions opt = base;
      opt.tz_override = tz;
      auto make = [&] {
        ConstStar2D<1> k(side, side, default_star2d_weights<1>());
        k.init([](int x, int y) { return 0.01 * x - 0.02 * y; });
        return k;
      };
      const double secs = time_scheme(make, T, opt, cfg.reps);
      // Simulated traffic of the same run (single-threaded trace replay).
      CacheModel cm(z, 16, 64);
      TraceStar2D trace(side, side, 1, 0, &cm);
      RunOptions topt = opt;
      topt.threads = 1;
      run(trace, T, topt);
      t.add_row({std::to_string(tz), fmt_fixed(secs, 3),
                 fmt_fixed(gflops(n, T, 9.0, secs), 2),
                 fmt_fixed(static_cast<double>(cm.miss_bytes()) / 1e9, 3),
                 f == 1.0 ? "<- Eq. 1" : ""});
    }
    std::cout << "CATS1 chunk height sweep:\n";
    t.print(std::cout);
  }

  {
    const std::int64_t bz_star = compute_bz(z, shape, {1, 2.8});
    Table t({"BZ", "seconds", "GFLOPS", "note"});
    for (double f : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      const auto bz = std::max<std::int64_t>(2, static_cast<std::int64_t>(bz_star * f));
      RunOptions opt = options_for(cfg, Scheme::Cats2);
      opt.bz_override = static_cast<int>(bz);
      auto make = [&] {
        ConstStar2D<1> k(side, side, default_star2d_weights<1>());
        k.init([](int x, int y) { return 0.01 * x - 0.02 * y; });
        return k;
      };
      const double secs = time_scheme(make, T, opt, cfg.reps);
      t.add_row({std::to_string(bz), fmt_fixed(secs, 3),
                 fmt_fixed(gflops(n, T, 9.0, secs), 2),
                 f == 1.0 ? "<- Eq. 2" : ""});
    }
    std::cout << "\nCATS2 diamond width sweep (same domain, BZ* = " << bz_star
              << "):\n";
    t.print(std::cout);
  }
  return 0;
}
