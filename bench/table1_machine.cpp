// Table I: machine characterization — measured L1/L2/system bandwidth, peak
// DP flops, stencil-peak DP flops, and the derived balanced intensities that
// motivate the whole paper (how many flops one main-memory double access
// must amortize before compute balances bandwidth).

#include "bench_harness/machine.hpp"
#include "common.hpp"

using namespace cats;
using namespace cats::bench;

int main(int argc, char** argv) {
  bench_config(argc, argv);  // --json / env knobs
  print_banner(std::cout, "Table I: machine characterization");
  std::cout << "\n";
  const MachineProfile p = profile_machine(0.4);

  Table t({"quantity", "this machine", "Opteron 2218 (paper)", "Xeon X5482 (paper)"});
  t.add_row({"Measured L1 Bandwidth", fmt_fixed(p.l1_bw_gbps, 1) + " GB/s", "79.3 GB/s", "194.6 GB/s"});
  t.add_row({"Measured L2 Bandwidth", fmt_fixed(p.l2_bw_gbps, 1) + " GB/s", "40.6 GB/s", "64.2 GB/s"});
  t.add_row({"Measured Sys. Bandwidth", fmt_fixed(p.sys_bw_gbps, 2) + " GB/s", "11.2 GB/s", "6.20 GB/s"});
  t.add_row({"Measured Peak DP FLOPS", fmt_fixed(p.peak_dp_gflops, 1) + " G", "20.8 G", "40.8 G"});
  t.add_row({"Measured Stencil DP FLOPS", fmt_fixed(p.stencil_dp_gflops, 1) + " G", "11.5 G", "25.1 G"});
  t.add_row({"L2 Band./Sys. Bandwidth", fmt_fixed(p.l2_over_sys(), 1), "3.6", "10.4"});
  t.add_row({"Balanced arith. intensity (Sys.)", fmt_fixed(p.balanced_intensity_sys(), 1), "14.9", "52.6"});
  t.add_row({"Balanced stencil intensity (Sys.)", fmt_fixed(p.balanced_stencil_intensity_sys(), 1), "8.2", "32.4"});
  t.add_row({"Balanced stencil intensity (L2)", fmt_fixed(p.balanced_stencil_intensity_l2(), 1), "2.2", "3.1"});
  t.print(std::cout);

  std::cout << "\nThe L2/system bandwidth ratio is the main source of "
               "acceleration available to time skewing;\nthe balanced stencil "
               "intensity for L2 (2-3 flops/double) is what makes a "
               "vectorized kernel\nrunning from L2 memory-bound rather than "
               "compute-bound (Section I/II motivation).\n";
  return 0;
}
