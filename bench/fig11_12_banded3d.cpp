// Figures 11 & 12: double-precision 7-band matrix on 3D domains. The hardest
// case in the paper: NS = 7 coefficient streams push every scheme back
// toward the memory wall (naive/PluTo fall under 2% of stencil peak there).

#include "bench_harness/ascii_plot.hpp"
#include "common.hpp"
#include "kernels/banded3d.hpp"

using namespace cats;
using namespace cats::bench;

namespace {

double run_point(double millions, int T, Scheme s, const BenchConfig& cfg,
                 SchemeChoice* choice) {
  const int side = side_3d(millions);
  auto make = [&] {
    Banded3D<1> k(side, side, side);
    k.parallel_init(
        options_for(cfg, s),
        [](int x, int y, int z) { return 0.01 * x + 0.02 * y - 0.005 * z; },
        1.0);
    k.init_bands([](int b, int x, int y, int z) {
      return (b == 0 ? 0.5 : 0.08) * (1.0 + 1e-3 * ((x ^ y ^ z) & 7));
    });
    return k;
  };
  return time_scheme(make, T, options_for(cfg, s), cfg.reps, choice);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig cfg = bench_config(argc, argv);
  print_banner(std::cout, "Fig. 11/12: 7-band matrix (variable stencil), 3D");
  std::cout << "threads=" << cfg.threads
            << (cfg.full ? " (paper-scale sweep)" : " (reduced sweep; CATS_BENCH_FULL=1 for paper scale)")
            << "\n\n";

  const auto sizes = sweep_sizes(cfg, 0.5, 32, 1, 16);
  const double flops_pp = 13.0;

  for (int T : {100, 10}) {
    Table table({"Melems", "side", "naive[s]", "pluto[s]", "cats[s]",
                 "naiveGF", "plutoGF", "catsGF", "cats-scheme"});
    double last_naive = 0, last_pluto = 0, last_cats = 0, last_n = 0;
    std::vector<std::pair<double, double>> pn, pp, pc;
    for (double m : sizes) {
      const int side = side_3d(m);
      const double n = static_cast<double>(side) * side * side;
      SchemeChoice choice{};
      const double tn = run_point(m, T, Scheme::Naive, cfg, nullptr);
      const double tp = run_point(m, T, Scheme::PlutoLike, cfg, nullptr);
      const double tc = run_point(m, T, Scheme::Auto, cfg, &choice);
      table.add_row({fmt_fixed(n / 1e6, 1), std::to_string(side),
                     fmt_fixed(tn, 3), fmt_fixed(tp, 3), fmt_fixed(tc, 3),
                     fmt_fixed(gflops(n, T, flops_pp, tn), 2),
                     fmt_fixed(gflops(n, T, flops_pp, tp), 2),
                     fmt_fixed(gflops(n, T, flops_pp, tc), 2),
                     std::string(scheme_name(choice.scheme)) +
                         (choice.scheme == Scheme::Cats1
                              ? "(TZ=" + std::to_string(choice.tz) + ")"
                              : "(BZ=" + std::to_string(choice.bz) + ")")});
      pn.emplace_back(n / 1e6, tn);
      pp.emplace_back(n / 1e6, tp);
      pc.emplace_back(n / 1e6, tc);
      last_naive = tn; last_pluto = tp; last_cats = tc; last_n = n;
    }
    std::cout << "T = " << T << ":\n";
    table.print(std::cout);
    std::cout << "execution time vs. elements (log-log, as in the paper's figure):\n";
    SeriesPlot plot;
    plot.add_series("naive", 'N', pn);
    plot.add_series("pluto-like", 'P', pp);
    plot.add_series("CATS", 'C', pc);
    plot.render(std::cout);
    std::cout << "largest size: CATS speedup vs naive "
              << fmt_fixed(last_naive / last_cats, 2) << "x, vs pluto-like "
              << fmt_fixed(last_pluto / last_cats, 2) << "x  ("
              << fmt_fixed(gflops(last_n, T, flops_pp, last_cats), 2)
              << " GFLOPS)\n\n";
  }
  std::cout << "paper (Fig. 12 caption, Xeon X5482, 32M, T=100): "
               "naive 0.4 GF, PluTo 0.5 GF, CATS 2.5 GF (10% of stencil peak)\n";
  std::cout << "paper (Fig. 11 caption, Opteron 2218): naive 1.0, PluTo 0.4, CATS 1.5 GF\n";
  return 0;
}
