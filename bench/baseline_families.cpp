// Optimizer-family comparison (single-threaded, locality only):
//   naive sweep | multi-dim time tiling (PluTo-like) | cache-oblivious
//   trapezoids (Frigo-Strassen) | CATS.
// The paper's Section I/II positions CATS against exactly these families and
// notes it is "surprising that the much simpler CATS can compete against the
// usual strategies of multi-dimensional tiling and multi-level tiling" —
// this bench makes that comparison on one machine with one kernel.

#include "baseline/cache_oblivious.hpp"
#include "common.hpp"
#include "kernels/const2d.hpp"
#include "kernels/const3d.hpp"

using namespace cats;
using namespace cats::bench;

int main(int argc, char** argv) {
  const BenchConfig cfg = bench_config(argc, argv);
  print_banner(std::cout, "Optimizer families: naive / tiled / oblivious / CATS");
  RunOptions serial = options_for(cfg, Scheme::Naive);
  serial.threads = 1;

  {
    const int side = cfg.full ? 8192 : 4096;
    const int T = 50;
    const double n = static_cast<double>(side) * side;
    auto make = [&] {
      ConstStar2D<1> k(side, side, default_star2d_weights<1>());
      k.init([](int x, int y) { return 0.01 * x - 0.005 * y; });
      return k;
    };
    Table t({"scheme (2D)", "seconds", "GFLOPS"});
    auto add = [&](const char* name, double secs) {
      t.add_row({name, fmt_fixed(secs, 3), fmt_fixed(gflops(n, T, 9.0, secs), 2)});
    };
    serial.scheme = Scheme::Naive;
    add("naive", time_scheme(make, T, serial, cfg.reps));
    serial.scheme = Scheme::PlutoLike;
    add("multi-dim tiling (PluTo-like)", time_scheme(make, T, serial, cfg.reps));
    {
      auto k = make();
      Timer timer;
      run_cache_oblivious(k, T);
      add("cache-oblivious trapezoids", timer.seconds());
    }
    serial.scheme = Scheme::Auto;
    add("CATS", time_scheme(make, T, serial, cfg.reps));
    std::cout << "2D constant 5-point, " << side << "^2, T=" << T << ":\n";
    t.print(std::cout);
    std::cout << "\n";
  }

  {
    const int side = cfg.full ? 512 : 256;
    const int T = 50;
    const double n = static_cast<double>(side) * side * side;
    auto make = [&] {
      ConstStar3D<1> k(side, side, side, default_star3d_weights<1>());
      k.init([](int x, int y, int z) { return 0.01 * (x + y - z); });
      return k;
    };
    Table t({"scheme (3D)", "seconds", "GFLOPS"});
    auto add = [&](const char* name, double secs) {
      t.add_row({name, fmt_fixed(secs, 3), fmt_fixed(gflops(n, T, 13.0, secs), 2)});
    };
    serial.scheme = Scheme::Naive;
    add("naive", time_scheme(make, T, serial, cfg.reps));
    serial.scheme = Scheme::PlutoLike;
    add("multi-dim tiling (PluTo-like)", time_scheme(make, T, serial, cfg.reps));
    {
      auto k = make();
      Timer timer;
      run_cache_oblivious(k, T);
      add("cache-oblivious trapezoids", timer.seconds());
    }
    serial.scheme = Scheme::Auto;
    add("CATS", time_scheme(make, T, serial, cfg.reps));
    std::cout << "3D constant 7-point, " << side << "^3, T=" << T << ":\n";
    t.print(std::cout);
  }
  return 0;
}
