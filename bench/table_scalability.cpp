// Section III-D: CATS thread scaling on the 3D constant 7-point stencil.
// Paper: 128M elements, T = 100, 1/2/4 threads (Opteron 1.7/3.3/6.4 GF,
// Xeon 5/9.6/13 GF). On a single-core host this exercises the tile-to-tile
// synchronization machinery under oversubscription; real speedup needs cores.

#include "common.hpp"
#include "core/stats.hpp"
#include "kernels/const3d.hpp"

using namespace cats;
using namespace cats::bench;

int main(int argc, char** argv) {
  const BenchConfig cfg = bench_config(argc, argv);
  print_banner(std::cout, "Sec. III-D: CATS scalability, 3D 7-point, T=100");
  const double millions = cfg.full ? 128 : 16;
  const int side = side_3d(millions);
  const int T = 100;
  const double n = static_cast<double>(side) * side * side;
  std::cout << "domain " << side << "^3 (" << fmt_fixed(n / 1e6, 1)
            << "M doubles), T=" << T << "\n\n";

  Table t({"threads", "seconds", "GFLOPS", "scheme", "waits", "tiles"});
  for (int threads : {1, 2, 4}) {
    RunStats stats;
    RunOptions opt;
    opt.threads = threads;
    opt.cache_bytes = cfg.cache_bytes;
    opt.stats = &stats;
    SchemeChoice choice{};
    auto make = [&] {
      ConstStar3D<1> k(side, side, side, default_star3d_weights<1>());
      k.init([](int x, int y, int z) { return 0.01 * x + 0.02 * y + 0.03 * z; });
      return k;
    };
    const double secs = time_scheme(make, T, opt, cfg.reps, &choice);
    t.add_row({std::to_string(threads), fmt_fixed(secs, 3),
               fmt_fixed(gflops(n, T, 13.0, secs), 2),
               scheme_name(choice.scheme),
               std::to_string(stats.wait_events.load() / cfg.reps),
               std::to_string(stats.tiles_processed.load() / cfg.reps)});
  }
  t.print(std::cout);
  std::cout << "\n'waits' counts tile-to-tile waits that actually spun — the "
               "paper's minimalist\nsynchronization claim holds when this "
               "stays near zero relative to 'tiles'.\n";
  std::cout << "\npaper (Xeon X5482): 5 / 9.6 / 13 GFLOPS for 1 / 2 / 4 threads\n"
               "paper (Opteron 2218): 1.7 / 3.3 / 6.4 GFLOPS\n"
               "note: this host has " << std::thread::hardware_concurrency()
            << " hardware thread(s); scaling beyond that measures sync "
               "overhead, not speedup.\n";
  return 0;
}
