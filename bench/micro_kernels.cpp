// Google-benchmark microbenchmarks: per-row kernel throughput with cache-
// resident data (the in-cache ceiling each scheme tries to approach), plus
// the cost of the geometry/synchronization machinery itself.

#include <benchmark/benchmark.h>

#include "core/geometry.hpp"
#include "core/run.hpp"
#include "kernels/banded2d.hpp"
#include "kernels/const2d.hpp"
#include "kernels/const3d.hpp"
#include "kernels/fdtd2d.hpp"

using namespace cats;

namespace {

void BM_Const2DRow(benchmark::State& state) {
  const int W = static_cast<int>(state.range(0));
  ConstStar2D<1> k(W, 8, default_star2d_weights<1>());
  k.init([](int x, int y) { return 0.1 * x + 0.2 * y; });
  int t = 1;
  for (auto _ : state) {
    for (int y = 0; y < 8; ++y) k.process_row(t, y, 0, W);
    ++t;
  }
  state.SetItemsProcessed(state.iterations() * 8 * W);
  state.counters["GF"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 8 * W * 9.0,
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}
BENCHMARK(BM_Const2DRow)->Arg(512)->Arg(4096);

void BM_Const2DRowScalar(benchmark::State& state) {
  const int W = static_cast<int>(state.range(0));
  ConstStar2D<1> k(W, 8, default_star2d_weights<1>());
  k.init([](int x, int y) { return 0.1 * x + 0.2 * y; });
  int t = 1;
  for (auto _ : state) {
    for (int y = 0; y < 8; ++y) k.process_row_scalar(t, y, 0, W);
    ++t;
  }
  state.SetItemsProcessed(state.iterations() * 8 * W);
}
BENCHMARK(BM_Const2DRowScalar)->Arg(512)->Arg(4096);

void BM_Const3DRow(benchmark::State& state) {
  const int W = static_cast<int>(state.range(0));
  ConstStar3D<1> k(W, 4, 4, default_star3d_weights<1>());
  k.init([](int x, int y, int z) { return 0.1 * x + 0.2 * y + 0.3 * z; });
  int t = 1;
  for (auto _ : state) {
    for (int z = 0; z < 4; ++z)
      for (int y = 0; y < 4; ++y) k.process_row(t, y, z, 0, W);
    ++t;
  }
  state.SetItemsProcessed(state.iterations() * 16 * W);
}
BENCHMARK(BM_Const3DRow)->Arg(512);

void BM_Banded2DRow(benchmark::State& state) {
  const int W = static_cast<int>(state.range(0));
  Banded2D<1> k(W, 8);
  k.init([](int x, int y) { return 0.1 * x + 0.2 * y; });
  k.init_bands([](int b, int, int) { return b == 0 ? 0.5 : 0.125; });
  int t = 1;
  for (auto _ : state) {
    for (int y = 0; y < 8; ++y) k.process_row(t, y, 0, W);
    ++t;
  }
  state.SetItemsProcessed(state.iterations() * 8 * W);
}
BENCHMARK(BM_Banded2DRow)->Arg(512);

void BM_Fdtd2DRow(benchmark::State& state) {
  const int W = static_cast<int>(state.range(0));
  Fdtd2D k(W, 8);
  k.init([](int, int) { return std::tuple{0.1, 0.2, 0.3}; });
  int t = 1;
  for (auto _ : state) {
    for (int y = 0; y < 8; ++y) k.process_row(t, y, 0, W);
    ++t;
  }
  state.SetItemsProcessed(state.iterations() * 8 * W);
}
BENCHMARK(BM_Fdtd2DRow)->Arg(512);

// Geometry arithmetic on the hot path of CATS1/CATS2.
void BM_Cats1TauRanges(benchmark::State& state) {
  const Cats1Chunk c{1, 32, 1 << 20, 4};
  std::int64_t sink = 0;
  for (auto _ : state) {
    const Range ur = c.tile_u_range(1);
    for (std::int64_t u = ur.lo; u < ur.lo + 1024; ++u) {
      const Range r = c.tau_range(1, u);
      sink += r.lo + r.hi;
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_Cats1TauRanges);

void BM_DiamondRanges(benchmark::State& state) {
  const DiamondTiling dt{1, 64, 1 << 16, 1, 1000};
  std::int64_t sink = 0;
  for (auto _ : state) {
    for (std::int64_t i = 10; i < 42; ++i) {
      const Range tr = dt.t_range(i, i - 20);
      for (std::int64_t t = tr.lo; t <= tr.hi; ++t) {
        const Range p = dt.p_range(i, i - 20, t);
        sink += p.lo + p.hi;
      }
    }
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_DiamondRanges);

// End-to-end tiny run: scheme orchestration overhead (pool + sync) at a size
// where arithmetic is negligible.
void BM_SchemeOverhead(benchmark::State& state) {
  const auto scheme = static_cast<Scheme>(state.range(0));
  for (auto _ : state) {
    ConstStar2D<1> k(64, 64, default_star2d_weights<1>());
    k.init([](int x, int y) { return 0.1 * x + 0.2 * y; });
    RunOptions opt;
    opt.scheme = scheme;
    opt.threads = 2;
    opt.cache_bytes = 1 << 20;
    run(k, 10, opt);
  }
}
BENCHMARK(BM_SchemeOverhead)
    ->Arg(static_cast<int>(Scheme::Naive))
    ->Arg(static_cast<int>(Scheme::Cats1))
    ->Arg(static_cast<int>(Scheme::Cats2));

}  // namespace

BENCHMARK_MAIN();
