// Section III-F: result comparison against literature kernels, in
// giga-updates per second (the cross-paper metric).
//   A: 3D Laplace (8 flops),  256^3 x 100   [Kamil et al., autotuned, no skewing]
//   B: 3D Jacobi  (8 flops),  512^3 x 100   [Wellein et al., temporal blocking]
//   C: 3D Jacobi  (6 flops),  600^3 x 100   [Wittmann et al., temporal blocking]
//   D: 2D FDTD    (11 flops), 2000^2 x 2000 [Baskaran et al., PTile]
// We run CATS on exactly these kernels/sizes (D uses our 17-flop Jacobi-ized
// fusion; its update count is unchanged). Reduced mode shrinks B-D so the
// binary finishes quickly; CATS_BENCH_FULL=1 restores paper sizes.

#include <tuple>

#include "common.hpp"
#include "kernels/fdtd2d.hpp"
#include "kernels/literature.hpp"

using namespace cats;
using namespace cats::bench;

int main(int argc, char** argv) {
  const BenchConfig cfg = bench_config(argc, argv);
  print_banner(std::cout, "Sec. III-F: literature comparison (giga updates/sec)");
  std::cout << (cfg.full ? "paper-scale sizes\n\n" : "reduced sizes; CATS_BENCH_FULL=1 for paper scale\n\n");

  Table t({"case", "kernel", "domain", "T", "CATS GU/s", "paper GU/s", "CATS GU/s (paper)"});

  {  // A: Laplace 256^3 x 100
    const int side = cfg.full ? 256 : 192;
    const int T = 100;
    auto make = [&] {
      Laplace3D k(side, side, side, 0.25, 0.125);
      k.init([](int x, int y, int z) { return 0.01 * (x + y + z); });
      return k;
    };
    const double n = static_cast<double>(side) * side * side;
    const double secs = time_scheme(make, T, options_for(cfg, Scheme::Auto), cfg.reps);
    t.add_row({"A", "3D Laplace 8f", std::to_string(side) + "^3",
               std::to_string(T), fmt_fixed(gupdates(n, T, secs), 2), "0.49",
               "1.31"});
  }
  {  // B: Jacobi 8f 512^3 x 100
    const int side = cfg.full ? 512 : 256;
    const int T = cfg.full ? 100 : 50;
    auto make = [&] {
      Laplace3D k(side, side, side, 0.4, 0.1);
      k.init([](int x, int y, int z) { return 0.01 * (x - y + z); });
      return k;
    };
    const double n = static_cast<double>(side) * side * side;
    const double secs = time_scheme(make, T, options_for(cfg, Scheme::Auto), cfg.reps);
    t.add_row({"B", "3D Jacobi 8f", std::to_string(side) + "^3",
               std::to_string(T), fmt_fixed(gupdates(n, T, secs), 2), "1.2",
               "0.85"});
  }
  {  // C: Jacobi 6f 600^3 x 100
    const int side = cfg.full ? 600 : 256;
    const int T = cfg.full ? 100 : 50;
    auto make = [&] {
      Jacobi3D6 k(side, side, side, 0.0, 1.0 / 6.0);
      k.init([](int x, int y, int z) { return 0.02 * (x + y - z); });
      return k;
    };
    const double n = static_cast<double>(side) * side * side;
    const double secs = time_scheme(make, T, options_for(cfg, Scheme::Auto), cfg.reps);
    t.add_row({"C", "3D Jacobi 6f", std::to_string(side) + "^3",
               std::to_string(T), fmt_fixed(gupdates(n, T, secs), 2), "1.75",
               "0.62"});
  }
  {  // D: FDTD 2000^2 x 2000
    const int side = 2000;
    const int T = cfg.full ? 2000 : 200;
    auto make = [&] {
      Fdtd2D k(side, side);
      k.init([side](int x, int y) {
        const double dx = (x - side / 2) * 0.01, dy = (y - side / 2) * 0.01;
        return std::tuple{0.0, 0.0, std::exp(-(dx * dx + dy * dy))};
      });
      return k;
    };
    const double n = static_cast<double>(side) * side;
    const double secs = time_scheme(make, T, options_for(cfg, Scheme::Auto), cfg.reps);
    t.add_row({"D", "2D FDTD", std::to_string(side) + "^2", std::to_string(T),
               fmt_fixed(gupdates(n, T, secs), 2), "0.70", "0.61"});
  }
  t.print(std::cout);
  std::cout << "\npaper columns: the published result (A-D on Xeon X5550 /"
               " E5462) and CATS on the paper's Xeon X5482.\n";
  return 0;
}
