// Ablation: design choices the paper argues for, measured.
//  1. Axis-aligned vs diagonal wavefronts (Section II-B vs Wonnacott):
//     same TZ, same traversal — only the wavefront orientation differs.
//  2. Static (a-priori) vs dynamic diamond->thread assignment (Section I:
//     "the thread to tile assignment is known at compile-time").

#include "common.hpp"
#include "core/variants.hpp"
#include "kernels/const2d.hpp"

using namespace cats;
using namespace cats::bench;

int main(int argc, char** argv) {
  const BenchConfig cfg = bench_config(argc, argv);
  print_banner(std::cout, "Ablation: wavefront orientation & tile assignment");

  {
    const int side = cfg.full ? 4096 : 2048;
    const int T = 50;
    const double n = static_cast<double>(side) * side;
    RunOptions opt = options_for(cfg, Scheme::Cats1);
    opt.threads = 1;  // isolate orientation, not parallelization
    const std::size_t z = resolve_cache_bytes(opt);
    const DomainShape shape{static_cast<std::int64_t>(side) * side, side, side, 2};
    const int tz = compute_tz(z, shape, {1, 2.8});
    opt.tz_override = tz;

    auto make = [&] {
      ConstStar2D<1> k(side, side, default_star2d_weights<1>());
      k.init([](int x, int y) { return 0.01 * x - 0.02 * y; });
      return k;
    };
    const double axis = time_scheme(make, T, opt, cfg.reps);
    double diag = 0.0;
    {
      auto k = make();
      Timer timer;
      run_diagonal_wavefront_2d(k, T, tz);
      diag = timer.seconds();
    }
    Table t({"wavefront", "seconds", "GFLOPS", "note"});
    t.add_row({"axis-aligned {y+t}", fmt_fixed(axis, 3),
               fmt_fixed(gflops(n, T, 9.0, axis), 2), "CATS choice"});
    t.add_row({"diagonal {x+y+t}", fmt_fixed(diag, 3),
               fmt_fixed(gflops(n, T, 9.0, diag), 2), "Wonnacott-style"});
    std::cout << "wavefront orientation (1 thread, " << side << "^2, T=" << T
              << ", TZ=" << tz << "):\n";
    t.print(std::cout);
    std::cout << "axis-aligned is " << fmt_fixed(diag / axis, 1)
              << "x faster: the diagonal wavefront touches one point per row "
                 "(no unit-stride runs,\nno vectorization) — the paper's "
                 "stated reason for axis-aligned wavefronts.\n\n";
  }

  {
    const int side = cfg.full ? 4096 : 2048;
    const int T = 50;
    const double n = static_cast<double>(side) * side;
    RunOptions opt = options_for(cfg, Scheme::Cats2);
    const std::size_t z = resolve_cache_bytes(opt);
    const DomainShape shape{static_cast<std::int64_t>(side) * side, side, side, 2};
    const std::int64_t bz = compute_bz(z, shape, {1, 2.8});

    auto make = [&] {
      ConstStar2D<1> k(side, side, default_star2d_weights<1>());
      k.init([](int x, int y) { return 0.01 * x - 0.02 * y; });
      return k;
    };
    Table t({"assignment", "threads", "seconds", "GFLOPS"});
    for (int threads : {1, 4}) {
      RunOptions o = opt;
      o.threads = threads;
      const double st = time_scheme(make, T, o, cfg.reps);
      double dy = 0.0;
      {
        auto k = make();
        Timer timer;
        run_cats2_dynamic(k, T, o, bz);
        dy = timer.seconds();
      }
      t.add_row({"static round-robin", std::to_string(threads),
                 fmt_fixed(st, 3), fmt_fixed(gflops(n, T, 9.0, st), 2)});
      t.add_row({"dynamic (claim cursor)", std::to_string(threads),
                 fmt_fixed(dy, 3), fmt_fixed(gflops(n, T, 9.0, dy), 2)});
    }
    std::cout << "diamond-to-thread assignment (CATS2, " << side << "^2, T="
              << T << ", BZ=" << bz << "):\n";
    t.print(std::cout);
    std::cout << "equal-size tiles make static assignment sufficient "
                 "(Section I: dynamic load-balancing\nis not necessary); the "
                 "dynamic variant buys nothing but costs an atomic per tile.\n";
  }
  return 0;
}
