#pragma once
// Shared helpers for the figure/table benchmark binaries.
//
// Environment knobs:
//   CATS_BENCH_FULL=1      paper-scale sweeps (up to 128M elements, ~GiB data)
//   CATS_BENCH_TINY=1      smallest-size smoke run (CI; correctness, not perf)
//   CATS_BENCH_THREADS=N   worker threads (default: hardware concurrency)
//   CATS_BENCH_CACHE_KB=N  cache parameter Z for CATS (default: detected L2)
//   CATS_BENCH_REPS=N      repetitions per point, median reported (default 1)
//   CATS_BENCH_JSON=path   machine-readable BENCH_*.json output
//   CATS_BENCH_TUNE=db|search  tuning DB policy for Scheme::Auto points
//   CATS_BENCH_AFFINITY=none|compact|scatter  thread-pinning policy
//
// CLI flags (override the environment): --json <path>, --tune db|search,
// --affinity none|compact|scatter.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_harness/report.hpp"
#include "bench_harness/timing.hpp"
#include "cachesim/traffic_model.hpp"
#include "core/run.hpp"
#include "core/stats.hpp"
#include "simd/vecd.hpp"
#include "sysinfo/topology.hpp"
#include "tune/tuner.hpp"

namespace cats::bench {

struct BenchConfig {
  bool full = false;
  bool tiny = false;
  int threads = 1;
  std::size_t cache_bytes = 0;  // 0 = detect
  int reps = 1;
  Tuning tuning = Tuning::Off;
  AffinityPolicy affinity = AffinityPolicy::None;
};

inline int env_int(const char* name, int dflt) {
  if (const char* v = std::getenv(name)) {
    const int x = std::atoi(v);
    if (x > 0) return x;
  }
  return dflt;
}

inline Tuning parse_tuning(const char* v) {
  if (v && std::strcmp(v, "db") == 0) return Tuning::UseDb;
  if (v && std::strcmp(v, "search") == 0) return Tuning::Search;
  return Tuning::Off;
}

inline AffinityPolicy parse_affinity(const char* v) {
  if (v && std::strcmp(v, "compact") == 0) return AffinityPolicy::Compact;
  if (v && std::strcmp(v, "scatter") == 0) return AffinityPolicy::Scatter;
  return AffinityPolicy::None;
}

inline BenchConfig bench_config(int argc = 0, char** argv = nullptr) {
  BenchConfig c;
  c.full = std::getenv("CATS_BENCH_FULL") != nullptr;
  c.tiny = std::getenv("CATS_BENCH_TINY") != nullptr;
  c.threads = env_int("CATS_BENCH_THREADS",
                      static_cast<int>(std::thread::hardware_concurrency()));
  if (c.threads < 1) c.threads = 1;
  c.cache_bytes = static_cast<std::size_t>(env_int("CATS_BENCH_CACHE_KB", 0)) * 1024;
  c.reps = env_int("CATS_BENCH_REPS", 1);
  if (const char* j = std::getenv("CATS_BENCH_JSON")) json_log().enable(j);
  c.tuning = parse_tuning(std::getenv("CATS_BENCH_TUNE"));
  c.affinity = parse_affinity(std::getenv("CATS_BENCH_AFFINITY"));
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_log().enable(argv[i + 1]);
    if (std::strcmp(argv[i], "--tune") == 0) c.tuning = parse_tuning(argv[i + 1]);
    if (std::strcmp(argv[i], "--affinity") == 0)
      c.affinity = parse_affinity(argv[i + 1]);
  }
  json_log().add_context("affinity", affinity_policy_name(c.affinity));
  json_log().add_context("isa", simd::kIsaName);
  return c;
}

inline RunOptions options_for(const BenchConfig& c, Scheme s) {
  RunOptions opt;
  opt.threads = c.threads;
  opt.cache_bytes = c.cache_bytes;
  opt.scheme = s;
  opt.tuning = c.tuning;
  opt.affinity = c.affinity;
  return opt;
}

/// Tuning::Search resolution: the bench harness owns a kernel factory, so a
/// DB miss can be filled by an actual neighborhood search here (run() itself
/// degrades Search to UseDb — it has no factory). Downgrades `opt` to UseDb
/// afterwards so the timed runs below pay only a cached lookup.
template <class MakeKernel>
void ensure_tuned(MakeKernel&& make_kernel, int T, RunOptions& opt) {
  if (opt.tuning != Tuning::Search || opt.scheme != Scheme::Auto) return;
  auto k = make_kernel();
  tune::DbKey key;
  key.machine = machine_fingerprint();
  key.kernel = kernel_tuning_id(k);
  key.shape = tune::shape_bucket(domain_shape(k));
  key.threads = opt.threads;
  const std::string path =
      opt.tuning_db_path ? opt.tuning_db_path : tune::TuneDb::default_path();
  if (!tune::cached_lookup(path, key)) {
    tune::search_and_store(make_kernel, T, opt, path);
  }
  opt.tuning = Tuning::UseDb;
}

/// Analytic DRAM bytes for one timed configuration, RFO-corrected unless NT
/// stores apply (cachesim/traffic_model.hpp). NT is credited whenever the
/// option is on and a CATS scheme ran — the model's write pass is exactly
/// the trailing-wavefront traffic the wave engine streams; plans that fail
/// nt_store_eligible() at execution keep their RFOs, so this scalar is the
/// *model's* figure, not a measurement.
template <class K>
double model_dram_bytes(const K& k, int T, const RunOptions& opt,
                        const SchemeChoice& c) {
  const DomainShape d = domain_shape(k);
  TrafficInput in;
  in.n = static_cast<double>(d.n);
  in.t_steps = T;
  in.bands = k.extra_cache_doubles_per_point();
  in.state = k.state_doubles_per_point();
  in.slope = k.slope();
  in.wmax = std::max(1.0, static_cast<double>(d.wmax));
  in.tiles = opt.threads;
  in.elem_bytes = kernel_element_bytes(k);
  double bytes = 0.0;
  bool cats = true;
  switch (c.scheme) {
    case Scheme::Cats1:
      bytes = cats1_traffic_bytes(in, std::max(1, c.tz));
      break;
    case Scheme::Cats2:
    case Scheme::Cats3:
    case Scheme::Mwd:  // c.bz already carries the pooled-budget diamond width
      bytes = cats2_traffic_bytes(
          in, std::max<std::int64_t>(2ll * in.slope, c.bz));
      break;
    default:
      bytes = naive_traffic_bytes(in);
      cats = false;
      break;
  }
  if (!(opt.nt_stores && cats)) bytes = with_rfo_bytes(in, bytes);
  return bytes;
}

/// Median wall seconds of `reps` runs; make_kernel() -> fresh initialized
/// kernel each rep (the run mutates it). With --json enabled, the timed
/// runs' synchronization wait time (RunStats::wait_ns over all reps) is
/// accumulated into the report's scalars, along with the analytic DRAM
/// traffic ("model_dram_bytes", one rep's worth per timed configuration)
/// and the matching update count ("model_updates" = N*T); their ratio is
/// the modeled effective DRAM bytes per point update.
template <class MakeKernel>
double time_scheme(MakeKernel&& make_kernel, int T, const RunOptions& opt,
                   int reps, SchemeChoice* choice_out = nullptr) {
  RunOptions ropt = opt;
  ensure_tuned(make_kernel, T, ropt);
  RunStats wait_stats;
  if (json_log().enabled() && !ropt.stats) ropt.stats = &wait_stats;
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  SchemeChoice last{};
  for (int r = 0; r < reps; ++r) {
    auto k = make_kernel();
    Timer timer;
    last = run(k, T, ropt);
    samples.push_back(timer.seconds());
    if (choice_out) *choice_out = last;
  }
  if (ropt.stats == &wait_stats) {
    json_log().bump_scalar("wait_ns", static_cast<double>(wait_stats.wait_ns));
    json_log().bump_scalar("wait_events",
                           static_cast<double>(wait_stats.wait_events));
    // Intra-tile share of the wait aggregates above (TeamBarrier crossings,
    // core/stats.hpp): member imbalance inside MWD groups / CATS teams, as
    // opposed to tile-to-tile edge waits.
    json_log().bump_scalar("team_wait_ns",
                           static_cast<double>(wait_stats.team_wait_ns));
    json_log().bump_scalar("team_wait_events",
                           static_cast<double>(wait_stats.team_wait_events));
  }
  if (json_log().enabled()) {
    const auto k = make_kernel();
    json_log().bump_scalar("model_dram_bytes",
                           model_dram_bytes(k, T, ropt, last));
    json_log().bump_scalar(
        "model_updates", static_cast<double>(domain_shape(k).n) * T);
  }
  return summarize(samples).median;
}

inline double gflops(double n_points, int T, double flops_per_point,
                     double secs) {
  return n_points * T * flops_per_point / secs / 1e9;
}

inline double gupdates(double n_points, int T, double secs) {
  return n_points * T / secs / 1e9;
}

/// Side lengths whose square/cube is close to `million * 1e6` elements.
inline int side_2d(double million) {
  return static_cast<int>(std::sqrt(million * 1e6) + 0.5);
}
inline int side_3d(double million) {
  return static_cast<int>(std::cbrt(million * 1e6) + 0.5);
}

/// The paper doubles element counts between graph points.
inline std::vector<double> size_series(double lo_millions, double hi_millions) {
  std::vector<double> s;
  for (double m = lo_millions; m <= hi_millions * 1.01; m *= 2.0) s.push_back(m);
  return s;
}

/// Size sweep honoring the three run modes: tiny (CI smoke) collapses to a
/// single sub-million point, full is the paper-scale doubling series, and the
/// default is a reduced series that still shows the cache transition.
inline std::vector<double> sweep_sizes(const BenchConfig& c, double full_lo,
                                       double full_hi, double dflt_lo,
                                       double dflt_hi) {
  if (c.tiny) return {0.25};
  return c.full ? size_series(full_lo, full_hi)
                : size_series(dflt_lo, dflt_hi);
}

}  // namespace cats::bench
