// Ablation: simulated DRAM traffic per scheme (LRU cache model), the
// quantitative backing for "cache accurate": CATS traffic approaches one
// domain read+write per time chunk; the naive scheme pays it per sweep.

#include "cachesim/cache_model.hpp"
#include "cachesim/trace_kernel.hpp"
#include "common.hpp"

using namespace cats;
using namespace cats::bench;

namespace {

std::uint64_t sim2d(Scheme s, int side, int T, std::size_t z, int bands) {
  CacheModel cm(z, 16, 64);
  TraceStar2D k(side, side, 1, bands, &cm);
  RunOptions opt;
  opt.scheme = s;
  opt.threads = 1;
  opt.cache_bytes = z;
  run(k, T, opt);
  return cm.miss_bytes();
}

std::uint64_t sim3d(Scheme s, int side, int T, std::size_t z, int bands) {
  CacheModel cm(z, 16, 64);
  TraceStar3D k(side, side, side, 1, bands, &cm);
  RunOptions opt;
  opt.scheme = s;
  opt.threads = 1;
  opt.cache_bytes = z;
  run(k, T, opt);
  return cm.miss_bytes();
}

}  // namespace

int main(int argc, char** argv) {
  bench_config(argc, argv);  // --json / env knobs
  print_banner(std::cout, "Ablation: simulated DRAM traffic per scheme");
  const std::size_t z = 256 * 1024;  // scaled-down cache for fast simulation
  std::cout << "cache model: " << fmt_mib(z) << ", 16-way, 64B lines\n\n";

  {
    const int side = 1024, T = 40;
    const double domain_gb = 2.0 * side * side * 8.0 / 1e9;  // rd + wr
    Table t({"scheme (2D 1024^2, T=40)", "sim. DRAM GB", "x domain rd+wr", "vs naive"});
    const std::uint64_t nv = sim2d(Scheme::Naive, side, T, z, 0);
    for (Scheme s : {Scheme::Naive, Scheme::PlutoLike, Scheme::Cats1, Scheme::Cats2}) {
      const std::uint64_t b = (s == Scheme::Naive) ? nv : sim2d(s, side, T, z, 0);
      t.add_row({scheme_name(s), fmt_fixed(static_cast<double>(b) / 1e9, 3),
                 fmt_fixed(static_cast<double>(b) / 1e9 / domain_gb, 1),
                 fmt_fixed(static_cast<double>(nv) / static_cast<double>(b), 1) + "x less"});
    }
    t.print(std::cout);
  }
  {
    const int side = 96, T = 24;
    Table t({"scheme (3D 96^3, T=24)", "sim. DRAM GB", "vs naive"});
    const std::uint64_t nv = sim3d(Scheme::Naive, side, T, z, 0);
    for (Scheme s : {Scheme::Naive, Scheme::PlutoLike, Scheme::Cats2}) {
      const std::uint64_t b = (s == Scheme::Naive) ? nv : sim3d(s, side, T, z, 0);
      t.add_row({scheme_name(s), fmt_fixed(static_cast<double>(b) / 1e9, 3),
                 fmt_fixed(static_cast<double>(nv) / static_cast<double>(b), 1) + "x less"});
    }
    std::cout << "\n";
    t.print(std::cout);
  }
  {
    const int side = 724, T = 24, NS = 5;
    Table t({"scheme (2D banded NS=5)", "sim. DRAM GB", "vs naive"});
    const std::uint64_t nv = sim2d(Scheme::Naive, side, T, z, NS);
    for (Scheme s : {Scheme::Naive, Scheme::Cats1, Scheme::Cats2}) {
      const std::uint64_t b = (s == Scheme::Naive) ? nv : sim2d(s, side, T, z, NS);
      t.add_row({scheme_name(s), fmt_fixed(static_cast<double>(b) / 1e9, 3),
                 fmt_fixed(static_cast<double>(nv) / static_cast<double>(b), 1) + "x less"});
    }
    std::cout << "\n";
    t.print(std::cout);
    std::cout << "\nbanded: coefficients must stream from DRAM every chunk, so "
                 "the achievable reduction is\ncapped near (2+NS)/(2+NS)/chunks "
                 "-> the memory wall returns (Section III-B).\n";
  }
  return 0;
}
