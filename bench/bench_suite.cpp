// Consolidated perf-tracking suite: one pinned-size run per kernel family x
// scheme configuration, emitting a single machine-readable report
// (`--json BENCH_10.json`) with MLUP/s and modeled DRAM bytes/point per row.
// CI runs it under CATS_BENCH_TINY at several thread counts and
// tools/bench_compare.py diffs the MLUP/s columns against the checked-in
// baseline, grouped per precision and per thread count (the report's
// "threads" context keys the groups; the fp32 family carries its own
// naive/plain anchors).
//
// Each CATS2 family is measured three ways: "cats2_plain" disables the wave
// engine (unroll_t=1, no NT stores, no software prefetch), "cats2_wave"
// enables it (temporal fusion, NT trailing stores, prefetch), and "cats2_tv"
// additionally runs the fused chain through the temporally-vectorized
// micro-kernel (RunOptions::temporal_vec, wave/temporal_vec.hpp). The
// wave/plain ratio is the wave engine's speedup, the tv/wave ratio the
// register-window gain, and const2d_f32 vs const2d at equal config the fp32
// precision gain.
//
// MWD rows: "mwd_g2" pools pairs of threads over shared diamonds
// (RunOptions::mwd_group = 2, core/mwd.hpp) at the wave configuration;
// "cats2_teams" is the incumbent multi-thread sharing scheme (3D CATS2
// y-split teams, team_size = 2) it races. Both degrade gracefully at
// THREADS=1 (group/team width clamps to 1), so single-thread baselines stay
// comparable across the matrix.

#include "common.hpp"
#include "kernels/banded2d.hpp"
#include "kernels/banded3d.hpp"
#include "kernels/const2d.hpp"
#include "kernels/const2d_f32.hpp"
#include "kernels/const3d.hpp"

using namespace cats;
using namespace cats::bench;

namespace {

struct SchemeConfig {
  const char* name;
  Scheme scheme;
  int unroll_t;       // RunOptions::unroll_t (0 = auto-fuse)
  bool nt_stores;
  int prefetch_dist;
  bool temporal_vec;  // RunOptions::temporal_vec (register-window chains)
  int team_size;      // RunOptions::team_size (3D CATS1/2 y-split teams)
  int mwd_group;      // RunOptions::mwd_group (MWD shared-diamond groups)
};

constexpr SchemeConfig kConfigs[] = {
    {"naive", Scheme::Naive, 1, false, 0, false, 0, 0},
    {"pluto", Scheme::PlutoLike, 1, false, 0, false, 0, 0},
    {"cats1", Scheme::Cats1, 0, false, 4, false, 0, 0},
    {"cats2_plain", Scheme::Cats2, 1, false, 0, false, 0, 0},
    {"cats2_wave", Scheme::Cats2, 0, true, 4, false, 0, 0},
    {"cats2_tv", Scheme::Cats2, 0, true, 4, true, 0, 0},
    {"cats2_teams", Scheme::Cats2, 0, true, 4, false, 2, 0},
    {"mwd_g2", Scheme::Mwd, 0, true, 4, false, 0, 2},
};

RunOptions suite_options(const BenchConfig& cfg, const SchemeConfig& sc) {
  RunOptions opt = options_for(cfg, sc.scheme);
  opt.tuning = Tuning::Off;  // pinned configs; tuning would blur the diff
  opt.unroll_t = sc.unroll_t;
  opt.nt_stores = sc.nt_stores;
  opt.prefetch_dist = sc.prefetch_dist;
  opt.temporal_vec = sc.temporal_vec;
  if (sc.team_size > 0) opt.team_size = sc.team_size;
  if (sc.mwd_group > 0) {
    // Clamp like run() would (largest divisor of the pool) so a THREADS=1
    // matrix leg times the degenerate single-worker MWD, not a warning.
    opt.mwd_group = mwd_group_width(sc.mwd_group, opt.threads);
  }
  return opt;
}

template <class MakeKernel>
void bench_kernel(Table& table, const char* kernel, MakeKernel&& make, int T,
                  const BenchConfig& cfg, double n) {
  for (const SchemeConfig& sc : kConfigs) {
    const RunOptions opt = suite_options(cfg, sc);
    SchemeChoice choice{};
    const double secs = time_scheme(make, T, opt, cfg.reps, &choice);
    const auto k = make();
    const double bpp = model_dram_bytes(k, T, opt, choice) / (n * T);
    table.add_row({kernel, sc.name, fmt_fixed(secs, 4),
                   fmt_fixed(n * T / secs / 1e6, 1), fmt_fixed(bpp, 2),
                   scheme_name(choice.scheme)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig cfg = bench_config(argc, argv);
  print_banner(std::cout, "Bench suite: scheme x kernel perf matrix");
  json_log().set_title("bench_suite");
  // Thread count keys the baseline comparison groups (bench_compare.py
  // normalizes MLUP/s within one thread count only).
  json_log().add_context("threads", std::to_string(cfg.threads));

  // Pinned sizes so successive runs are directly comparable. Tiny is sized
  // for the CI comparison gate, not minimality: each timed point must take
  // tens of milliseconds, or virtualized-clock jitter swamps the 15%
  // regression tolerance (sub-5ms tiny points vary +-30% run to run).
  const double m2 = cfg.tiny ? 1.0 : (cfg.full ? 16.0 : 4.0);
  const double m3 = cfg.tiny ? 1.0 : (cfg.full ? 16.0 : 4.0);
  const int T = cfg.tiny ? 24 : 50;
  const int side2 = side_2d(m2), side3 = side_3d(m3);
  const double n2 = static_cast<double>(side2) * side2;
  const double n3 = static_cast<double>(side3) * side3 * side3;
  std::cout << "threads=" << cfg.threads << " 2D side=" << side2
            << " 3D side=" << side3 << " T=" << T << "\n\n";

  Table table({"kernel", "config", "secs", "MLUP/s", "model B/pt", "scheme"});

  bench_kernel(table, "const2d", [&] {
    ConstStar2D<1> k(side2, side2, default_star2d_weights<1>());
    k.parallel_init(options_for(cfg, Scheme::Naive),
                    [](int x, int y) { return 0.01 * x + 0.02 * y; }, 1.0);
    return k;
  }, T, cfg, n2);

  bench_kernel(table, "const2d_f32", [&] {
    FloatStar2D<1> k(side2, side2, default_star2d_weights<1, float>());
    k.parallel_init(options_for(cfg, Scheme::Naive),
                    [](int x, int y) { return 0.01f * x + 0.02f * y; }, 1.0f);
    return k;
  }, T, cfg, n2);

  bench_kernel(table, "banded2d", [&] {
    Banded2D<1> k(side2, side2);
    k.parallel_init(options_for(cfg, Scheme::Naive),
                    [](int x, int y) { return 0.01 * x + 0.02 * y; }, 1.0);
    k.init_bands([](int b, int x, int y) {
      return (b == 0 ? 0.5 : 0.125) * (1.0 + 1e-3 * ((x ^ y) & 7));
    });
    return k;
  }, T, cfg, n2);

  bench_kernel(table, "const3d", [&] {
    ConstStar3D<1> k(side3, side3, side3, default_star3d_weights<1>());
    k.parallel_init(
        options_for(cfg, Scheme::Naive),
        [](int x, int y, int z) { return 0.01 * x + 0.02 * y - 0.005 * z; },
        1.0);
    return k;
  }, T, cfg, n3);

  bench_kernel(table, "banded3d", [&] {
    Banded3D<1> k(side3, side3, side3);
    k.parallel_init(
        options_for(cfg, Scheme::Naive),
        [](int x, int y, int z) { return 0.01 * x + 0.02 * y - 0.005 * z; },
        1.0);
    k.init_bands([](int b, int x, int y, int z) {
      return (b == 0 ? 0.5 : 0.08) * (1.0 + 1e-3 * ((x ^ y ^ z) & 7));
    });
    return k;
  }, T, cfg, n3);

  table.print(std::cout);

  // Speedup summaries: wave engine over plain (the PR 5 acceptance
  // numbers), temporal vectorization over the spatial wave path, and the
  // fp32 family over fp64 at equal configuration.
  const auto& rows = table.rows();
  const auto mlups_of = [&](const std::string& kernel,
                            const std::string& config) {
    for (const auto& r : rows) {
      if (r[0] == kernel && r[1] == config) return std::atof(r[3].c_str());
    }
    return 0.0;
  };
  const auto ratio_line = [&](const std::string& label, double base,
                              double x) {
    std::cout << label << " " << fmt_fixed(base > 0 ? x / base : 0.0, 2)
              << "x (" << fmt_fixed(base, 1) << " -> " << fmt_fixed(x, 1)
              << " MLUP/s)\n";
  };
  for (const char* kernel :
       {"const2d", "const2d_f32", "banded2d", "const3d", "banded3d"}) {
    const double plain = mlups_of(kernel, "cats2_plain");
    const double wave = mlups_of(kernel, "cats2_wave");
    const double tv = mlups_of(kernel, "cats2_tv");
    ratio_line(std::string(kernel) + ": wave engine speedup", plain, wave);
    ratio_line(std::string(kernel) + ": temporal vec speedup", wave, tv);
  }
  for (const char* config : {"naive", "cats2_plain", "cats2_wave", "cats2_tv"}) {
    ratio_line(std::string("const2d_f32/") + config + ": fp32 speedup",
               mlups_of("const2d", config), mlups_of("const2d_f32", config));
  }
  // The MWD race: shared-diamond groups vs the incumbent sharing scheme —
  // y-split CATS2 teams in 3D, the plain wave config in 2D (2D has no team
  // path to race).
  for (const char* kernel :
       {"const2d", "const2d_f32", "banded2d", "const3d", "banded3d"}) {
    const double mwd = mlups_of(kernel, "mwd_g2");
    ratio_line(std::string(kernel) + ": MWD over cats2_wave",
               mlups_of(kernel, "cats2_wave"), mwd);
    if (std::string(kernel).find("3d") != std::string::npos) {
      ratio_line(std::string(kernel) + ": MWD over cats2_teams",
                 mlups_of(kernel, "cats2_teams"), mwd);
    }
  }
  return 0;
}
