// Consolidated perf-tracking suite: one pinned-size run per kernel family x
// scheme configuration, emitting a single machine-readable report
// (`--json BENCH_5.json`) with MLUP/s and modeled DRAM bytes/point per row.
// CI runs it under CATS_BENCH_TINY and tools/bench_compare.py diffs the
// MLUP/s columns against the checked-in baseline (15% tolerance).
//
// Each CATS2 family is measured twice: "cats2_plain" disables the wave
// engine (unroll_t=1, no NT stores, no software prefetch) and "cats2_wave"
// enables it (temporal fusion, NT trailing stores, prefetch) — their ratio
// is the wave engine's speedup on this machine.

#include "common.hpp"
#include "kernels/banded2d.hpp"
#include "kernels/banded3d.hpp"
#include "kernels/const2d.hpp"
#include "kernels/const3d.hpp"

using namespace cats;
using namespace cats::bench;

namespace {

struct SchemeConfig {
  const char* name;
  Scheme scheme;
  int unroll_t;       // RunOptions::unroll_t (0 = auto-fuse)
  bool nt_stores;
  int prefetch_dist;
};

constexpr SchemeConfig kConfigs[] = {
    {"naive", Scheme::Naive, 1, false, 0},
    {"pluto", Scheme::PlutoLike, 1, false, 0},
    {"cats1", Scheme::Cats1, 0, false, 4},
    {"cats2_plain", Scheme::Cats2, 1, false, 0},
    {"cats2_wave", Scheme::Cats2, 0, true, 4},
};

RunOptions suite_options(const BenchConfig& cfg, const SchemeConfig& sc) {
  RunOptions opt = options_for(cfg, sc.scheme);
  opt.tuning = Tuning::Off;  // pinned configs; tuning would blur the diff
  opt.unroll_t = sc.unroll_t;
  opt.nt_stores = sc.nt_stores;
  opt.prefetch_dist = sc.prefetch_dist;
  return opt;
}

template <class MakeKernel>
void bench_kernel(Table& table, const char* kernel, MakeKernel&& make, int T,
                  const BenchConfig& cfg, double n) {
  for (const SchemeConfig& sc : kConfigs) {
    const RunOptions opt = suite_options(cfg, sc);
    SchemeChoice choice{};
    const double secs = time_scheme(make, T, opt, cfg.reps, &choice);
    const auto k = make();
    const double bpp = model_dram_bytes(k, T, opt, choice) / (n * T);
    table.add_row({kernel, sc.name, fmt_fixed(secs, 4),
                   fmt_fixed(n * T / secs / 1e6, 1), fmt_fixed(bpp, 2),
                   scheme_name(choice.scheme)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig cfg = bench_config(argc, argv);
  print_banner(std::cout, "Bench suite: scheme x kernel perf matrix");
  json_log().set_title("bench_suite");

  // Pinned sizes so successive runs are directly comparable. Tiny is sized
  // for the CI comparison gate, not minimality: each timed point must take
  // tens of milliseconds, or virtualized-clock jitter swamps the 15%
  // regression tolerance (sub-5ms tiny points vary +-30% run to run).
  const double m2 = cfg.tiny ? 1.0 : (cfg.full ? 16.0 : 4.0);
  const double m3 = cfg.tiny ? 1.0 : (cfg.full ? 16.0 : 4.0);
  const int T = cfg.tiny ? 24 : 50;
  const int side2 = side_2d(m2), side3 = side_3d(m3);
  const double n2 = static_cast<double>(side2) * side2;
  const double n3 = static_cast<double>(side3) * side3 * side3;
  std::cout << "threads=" << cfg.threads << " 2D side=" << side2
            << " 3D side=" << side3 << " T=" << T << "\n\n";

  Table table({"kernel", "config", "secs", "MLUP/s", "model B/pt", "scheme"});

  bench_kernel(table, "const2d", [&] {
    ConstStar2D<1> k(side2, side2, default_star2d_weights<1>());
    k.parallel_init(options_for(cfg, Scheme::Naive),
                    [](int x, int y) { return 0.01 * x + 0.02 * y; }, 1.0);
    return k;
  }, T, cfg, n2);

  bench_kernel(table, "banded2d", [&] {
    Banded2D<1> k(side2, side2);
    k.parallel_init(options_for(cfg, Scheme::Naive),
                    [](int x, int y) { return 0.01 * x + 0.02 * y; }, 1.0);
    k.init_bands([](int b, int x, int y) {
      return (b == 0 ? 0.5 : 0.125) * (1.0 + 1e-3 * ((x ^ y) & 7));
    });
    return k;
  }, T, cfg, n2);

  bench_kernel(table, "const3d", [&] {
    ConstStar3D<1> k(side3, side3, side3, default_star3d_weights<1>());
    k.parallel_init(
        options_for(cfg, Scheme::Naive),
        [](int x, int y, int z) { return 0.01 * x + 0.02 * y - 0.005 * z; },
        1.0);
    return k;
  }, T, cfg, n3);

  bench_kernel(table, "banded3d", [&] {
    Banded3D<1> k(side3, side3, side3);
    k.parallel_init(
        options_for(cfg, Scheme::Naive),
        [](int x, int y, int z) { return 0.01 * x + 0.02 * y - 0.005 * z; },
        1.0);
    k.init_bands([](int b, int x, int y, int z) {
      return (b == 0 ? 0.5 : 0.08) * (1.0 + 1e-3 * ((x ^ y ^ z) & 7));
    });
    return k;
  }, T, cfg, n3);

  table.print(std::cout);

  // Wave-engine speedup summary (the PR 5 acceptance numbers).
  const auto& rows = table.rows();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i][1] != std::string("cats2_plain")) continue;
    for (std::size_t j = 0; j < rows.size(); ++j) {
      if (rows[j][0] == rows[i][0] && rows[j][1] == std::string("cats2_wave")) {
        const double plain = std::atof(rows[i][3].c_str());
        const double wave = std::atof(rows[j][3].c_str());
        std::cout << rows[i][0] << ": wave engine speedup "
                  << fmt_fixed(plain > 0 ? wave / plain : 0.0, 2) << "x ("
                  << fmt_fixed(plain, 1) << " -> " << fmt_fixed(wave, 1)
                  << " MLUP/s)\n";
      }
    }
  }
  return 0;
}
