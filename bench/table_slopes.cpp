// Section III-E: larger stencils — slope 1 (7-point), 2 (13-point) and
// 3 (19-point) constant stencils in 3D, T=100. Larger slopes worsen the
// surface-to-volume ratio of the space-time tiles; CATS must keep a clear
// advantage nevertheless.

#include "common.hpp"
#include "kernels/const3d.hpp"

using namespace cats;
using namespace cats::bench;

namespace {

template <int S>
void bench_slope(const BenchConfig& cfg, int side, int T, Table& t) {
  const double n = static_cast<double>(side) * side * side;
  const double flops_pp = 12.0 * S + 1.0;
  auto make = [&] {
    ConstStar3D<S> k(side, side, side, default_star3d_weights<S>());
    k.init([](int x, int y, int z) { return 0.01 * x + 0.02 * y + 0.03 * z; });
    return k;
  };
  SchemeChoice choice{};
  const double tn = time_scheme(make, T, options_for(cfg, Scheme::Naive), cfg.reps);
  const double tp = time_scheme(make, T, options_for(cfg, Scheme::PlutoLike), cfg.reps);
  const double tc = time_scheme(make, T, options_for(cfg, Scheme::Auto), cfg.reps, &choice);
  t.add_row({"s=" + std::to_string(S) + " (" + std::to_string(6 * S + 1) + "-pt)",
             fmt_fixed(gflops(n, T, flops_pp, tn), 2),
             fmt_fixed(gflops(n, T, flops_pp, tp), 2),
             fmt_fixed(gflops(n, T, flops_pp, tc), 2),
             fmt_fixed(tn / tc, 2) + "x",
             scheme_name(choice.scheme)});
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig cfg = bench_config(argc, argv);
  print_banner(std::cout, "Sec. III-E: larger stencils, 3D, T=100");
  const double millions = cfg.full ? 128 : 16;
  const int side = side_3d(millions);
  const int T = 100;
  std::cout << "domain " << side << "^3, T=" << T << "\n\n";

  Table t({"stencil", "naive GF", "pluto GF", "cats GF", "cats/naive", "scheme"});
  bench_slope<1>(cfg, side, T, t);
  bench_slope<2>(cfg, side, T, t);
  bench_slope<3>(cfg, side, T, t);
  t.print(std::cout);

  std::cout << "\npaper (Xeon X5482, GF):   naive 1.4/1.9/1.7  PluTo 3.7/4.3/1.9  CATS 13.0/8.5/4.6\n"
               "paper (Opteron 2218, GF): naive 2.4/3.1/3.1  PluTo 1.5/0.9/0.9  CATS 6.4/7.5/4.7\n";
  return 0;
}
