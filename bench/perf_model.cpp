// Performance-model validation (paper future work §IV): predict each
// scheme's runtime from machine characterization + analytic traffic model,
// and compare with measurement. The prediction also names the binding
// resource — the naive scheme should be DRAM-bound, CATS cache/compute-bound;
// that flip *is* the paper's thesis.

#include "bench_harness/machine.hpp"
#include "cachesim/traffic_model.hpp"
#include "common.hpp"
#include "core/perf_model.hpp"
#include "kernels/const2d.hpp"

using namespace cats;
using namespace cats::bench;

int main(int argc, char** argv) {
  const BenchConfig cfg = bench_config(argc, argv);
  print_banner(std::cout, "Performance model: predicted vs measured");
  std::cout << "characterizing machine...\n";
  const MachineProfile prof = profile_machine(0.3);
  std::cout << "sys " << fmt_fixed(prof.sys_bw_gbps, 1) << " GB/s, L2 "
            << fmt_fixed(prof.l2_bw_gbps, 1) << " GB/s, stencil peak "
            << fmt_fixed(prof.stencil_dp_gflops, 1) << " GF\n\n";

  const int side = cfg.full ? 8192 : 4096;
  const int T = 50;
  const double n = static_cast<double>(side) * side;
  const std::size_t z = resolve_cache_bytes(options_for(cfg, Scheme::Auto));
  const DomainShape shape{static_cast<std::int64_t>(side) * side, side, side, 2};
  const int tz = compute_tz(z, shape, {1, 2.8});
  const std::int64_t bz = compute_bz(z, shape, {1, 2.8});

  TrafficInput in{n, T, 0, 1.0, 1, static_cast<double>(side), cfg.threads};
  const double flops = n * T * 9.0;
  const double cache_b = kernel_cache_bytes(in);

  Table t({"scheme", "measured[s]", "predicted[s]", "ratio", "bound"});
  auto row = [&](Scheme s, double dram_bytes) {
    auto make = [&] {
      ConstStar2D<1> k(side, side, default_star2d_weights<1>());
      k.init([](int x, int y) { return 0.01 * x - 0.005 * y; });
      return k;
    };
    const double meas = time_scheme(make, T, options_for(cfg, s), cfg.reps);
    const PerfPrediction p = predict_runtime(prof, dram_bytes, cache_b, flops);
    t.add_row({scheme_name(s), fmt_fixed(meas, 3), fmt_fixed(p.seconds(), 3),
               fmt_fixed(meas / p.seconds(), 2), p.bound()});
  };
  row(Scheme::Naive, naive_traffic_bytes(in));
  row(Scheme::Cats1, cats1_traffic_bytes(in, tz));
  row(Scheme::Cats2, cats2_traffic_bytes(in, bz));
  t.print(std::cout);

  std::cout << "\ndomain " << side << "^2, T=" << T << ", TZ=" << tz
            << ", BZ=" << bz << ". A ratio near 1 validates the model; the "
               "expected pattern is\nnaive: DRAM-bound, CATS: cache/compute-"
               "bound — time skewing moves the binding resource\noff the "
               "memory wall.\n";
  return 0;
}
