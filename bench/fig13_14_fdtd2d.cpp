// Figures 13 & 14: 2D FDTD (fused electromagnetic kernel). A vector-valued
// problem: three doubles per space-time point shrink the wavefront, so the
// curves are a slowed-down version of the 2D constant-stencil figures.
// (Our fused kernel is the Jacobi-ized 17-flop variant — DESIGN.md §5;
// GFLOPS are reported at the true 17 and updates/sec is the primary metric.)

#include <tuple>

#include "bench_harness/ascii_plot.hpp"
#include "common.hpp"
#include "kernels/fdtd2d.hpp"

using namespace cats;
using namespace cats::bench;

namespace {

double run_point(double millions, int T, Scheme s, const BenchConfig& cfg,
                 SchemeChoice* choice) {
  const int side = side_2d(millions);
  auto make = [&] {
    Fdtd2D k(side, side);
    k.parallel_init(options_for(cfg, s), [side](int x, int y) {
      // Gaussian magnetic pulse in the center; quiet E fields.
      const double dx = (x - side / 2) * 0.05, dy = (y - side / 2) * 0.05;
      return std::tuple{0.0, 0.0, std::exp(-(dx * dx + dy * dy))};
    });
    return k;
  };
  return time_scheme(make, T, options_for(cfg, s), cfg.reps, choice);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig cfg = bench_config(argc, argv);
  print_banner(std::cout, "Fig. 13/14: 2D FDTD (fused kernel)");
  std::cout << "threads=" << cfg.threads
            << (cfg.full ? " (paper-scale sweep)" : " (reduced sweep; CATS_BENCH_FULL=1 for paper scale)")
            << "\n\n";

  const auto sizes = sweep_sizes(cfg, 0.5, 64, 1, 16);
  const double flops_pp = 17.0;

  for (int T : {100, 10}) {
    Table table({"Melems", "side", "naive[s]", "pluto[s]", "cats[s]",
                 "naiveGU", "plutoGU", "catsGU", "catsGF", "cats-scheme"});
    double last_naive = 0, last_pluto = 0, last_cats = 0, last_n = 0;
    std::vector<std::pair<double, double>> pn, pp, pc;
    for (double m : sizes) {
      const int side = side_2d(m);
      const double n = static_cast<double>(side) * side;
      SchemeChoice choice{};
      const double tn = run_point(m, T, Scheme::Naive, cfg, nullptr);
      const double tp = run_point(m, T, Scheme::PlutoLike, cfg, nullptr);
      const double tc = run_point(m, T, Scheme::Auto, cfg, &choice);
      table.add_row({fmt_fixed(n / 1e6, 1), std::to_string(side),
                     fmt_fixed(tn, 3), fmt_fixed(tp, 3), fmt_fixed(tc, 3),
                     fmt_fixed(gupdates(n, T, tn), 3),
                     fmt_fixed(gupdates(n, T, tp), 3),
                     fmt_fixed(gupdates(n, T, tc), 3),
                     fmt_fixed(gflops(n, T, flops_pp, tc), 2),
                     std::string(scheme_name(choice.scheme)) +
                         (choice.scheme == Scheme::Cats1
                              ? "(TZ=" + std::to_string(choice.tz) + ")"
                              : "(BZ=" + std::to_string(choice.bz) + ")")});
      pn.emplace_back(n / 1e6, tn);
      pp.emplace_back(n / 1e6, tp);
      pc.emplace_back(n / 1e6, tc);
      last_naive = tn; last_pluto = tp; last_cats = tc; last_n = n;
    }
    std::cout << "T = " << T << ":\n";
    table.print(std::cout);
    std::cout << "execution time vs. elements (log-log, as in the paper's figure):\n";
    SeriesPlot plot;
    plot.add_series("naive", 'N', pn);
    plot.add_series("pluto-like", 'P', pp);
    plot.add_series("CATS", 'C', pc);
    plot.render(std::cout);
    std::cout << "largest size: CATS speedup vs naive "
              << fmt_fixed(last_naive / last_cats, 2) << "x, vs pluto-like "
              << fmt_fixed(last_pluto / last_cats, 2) << "x\n\n";
    (void)last_n;
  }
  std::cout << "paper (Fig. 14, Xeon X5482, 64M, T=100): CATS 5.3x naive, 3.2x PluTo\n";
  std::cout << "paper (Fig. 13, Opteron 2218): CATS 1.7x naive, 1.4x PluTo\n";
  return 0;
}
