// cats_served: persistent stencil-as-a-service daemon.
//
//   cats_served --socket /tmp/cats.sock --shards 2 --coresident 2
//
// Accepts line-delimited JSON jobs over a Unix-domain socket (see
// src/serve/protocol.hpp), schedules them across NUMA-node shards with
// fair-share batching, and answers each with scheme, timing and a grid
// checksum. Shutdown discipline: the first SIGINT/SIGTERM (or a client
// "shutdown" request) drains — no new jobs, queued ones finish; a second
// signal cancels the still-queued jobs and exits once in-flight work
// completes.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <thread>

#include "serve/server.hpp"

namespace {

const char* kUsage =
    "usage: cats_served [options]\n"
    "  --socket PATH        listen path (default $CATS_SERVE_SOCKET or\n"
    "                       /tmp/cats_served.sock)\n"
    "  --shards N           shard count; 0 = one per NUMA node (default)\n"
    "  --threads-per-shard N  workers per shard; 0 = its physical cores\n"
    "  --queue-cap N        admission queue bound (default 64)\n"
    "  --coresident N       max batched tenants per shard (default 2)\n"
    "  --split-min-points N halo-split threshold under split=auto\n"
    "  --max-block N        halo-split block depth cap (default 8)\n"
    "  --tune-db PATH       tuning DB file (absolute; enables Tuning::UseDb)\n"
    "  --verbose            log accepts and jobs to stderr\n";

std::string default_socket() {
  if (const char* p = std::getenv("CATS_SERVE_SOCKET")) return p;
  return "/tmp/cats_served.sock";
}

}  // namespace

int main(int argc, char** argv) {
  cats::serve::ServerConfig cfg;
  cfg.socket_path = default_socket();

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "cats_served: %s needs a value\n%s", a.c_str(),
                     kUsage);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--socket") {
      cfg.socket_path = next();
    } else if (a == "--shards") {
      cfg.sched.shards = std::atoi(next());
    } else if (a == "--threads-per-shard") {
      cfg.sched.threads_per_shard = std::atoi(next());
    } else if (a == "--queue-cap") {
      cfg.sched.queue_capacity =
          static_cast<std::size_t>(std::atoll(next()));
    } else if (a == "--coresident") {
      cfg.sched.coresident = std::atoi(next());
    } else if (a == "--split-min-points") {
      cfg.sched.split_min_points = std::atoll(next());
    } else if (a == "--max-block") {
      cfg.sched.max_block = std::atoi(next());
    } else if (a == "--tune-db") {
      cfg.sched.tune_db = next();
      cfg.sched.tuning = cats::Tuning::UseDb;
    } else if (a == "--verbose") {
      cfg.verbose = true;
    } else if (a == "--help" || a == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else {
      std::fprintf(stderr, "cats_served: unknown option %s\n%s", a.c_str(),
                   kUsage);
      return 2;
    }
  }

  // Block the shutdown signals in every thread (the server's threads inherit
  // this mask), then consume them synchronously below.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  cats::serve::Server server(cfg);
  std::string err;
  if (!server.start(&err)) {
    std::fprintf(stderr, "cats_served: %s\n", err.c_str());
    return 1;
  }
  std::fprintf(stderr, "cats_served: ready on %s (%s)\n",
               cfg.socket_path.c_str(),
               server.scheduler().shard_plan().describe().c_str());

  // First signal: drain. While waiting for the drain to finish, a second
  // signal upgrades to cancel. A client "shutdown" request also triggers the
  // drain; poll for it with a timed sigwait.
  bool drain_logged = false;
  while (!server.draining()) {
    timespec ts{};
    ts.tv_nsec = 200 * 1000 * 1000;
    const int sig = sigtimedwait(&sigs, nullptr, &ts);
    if (sig == SIGINT || sig == SIGTERM) {
      std::fprintf(stderr,
                   "cats_served: draining (signal again to cancel queued "
                   "jobs)\n");
      drain_logged = true;
      server.request_drain();
      break;
    }
  }
  if (!drain_logged)
    std::fprintf(stderr, "cats_served: draining (client shutdown request)\n");

  // Drain in a helper so the main thread can keep listening for the
  // cancel-upgrade signal.
  std::atomic<bool> down{false};
  std::thread waiter([&] {
    server.wait();
    // order: relaxed — polled below; no data published through it.
    down.store(true, std::memory_order_relaxed);
  });
  while (!down.load(std::memory_order_relaxed)) {
    timespec ts{};
    ts.tv_nsec = 100 * 1000 * 1000;
    const int sig = sigtimedwait(&sigs, nullptr, &ts);
    if (sig == SIGINT || sig == SIGTERM) {
      std::fprintf(stderr, "cats_served: cancelling queued jobs\n");
      server.request_cancel();
    }
  }
  waiter.join();
  std::fprintf(stderr, "cats_served: drained, bye\n");
  return 0;
}
