#!/usr/bin/env python3
"""Repo lint checks (wired into the CI lint job).

Three rules over src/:

1. no-bare-assert: `assert(...)` is compiled out by -DNDEBUG in release
   builds, which is exactly where scheme bugs bite. Invariants must use
   CATS_CHECK (src/check/check.hpp), which stays on and formats a message.
   (`static_assert` is fine.)

2. memory-order-comments: every non-default std::memory_order argument must
   carry a `// order:` comment on the same line or within the two lines
   above (a comment covers a contiguous run of atomic lines below it), so
   the pairing that justifies the relaxation is written down where it can
   rot visibly.

3. standalone-headers: every src/**/*.hpp must compile on its own
   (g++ -std=c++20 -fsyntax-only -I src), so headers keep their includes
   and no header silently depends on its inclusion context.

Exit status 0 = clean, 1 = findings (printed as file:line: rule: message).
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

BARE_ASSERT = re.compile(r"(?<![_\w])assert\s*\(")
MEMORY_ORDER = re.compile(
    r"memory_order_(relaxed|acquire|release|acq_rel|consume)")
ORDER_COMMENT = re.compile(r"//\s*order:")
LINE_COMMENT = re.compile(r"//.*$")


def strip_comment(line: str) -> str:
    return LINE_COMMENT.sub("", line)


def check_bare_assert(path: Path, lines: list[str], findings: list[str]) -> None:
    for ln, line in enumerate(lines, 1):
        code = strip_comment(line)
        if "static_assert" in code:
            code = code.replace("static_assert", "")
        if BARE_ASSERT.search(code):
            findings.append(
                f"{path.relative_to(REPO)}:{ln}: no-bare-assert: use "
                f"CATS_CHECK (check/check.hpp); assert() vanishes under "
                f"-DNDEBUG")


def check_memory_order(path: Path, lines: list[str],
                       findings: list[str]) -> None:
    covered = False  # previous line was an annotated/covered atomic line
    for ln, line in enumerate(lines, 1):
        uses = MEMORY_ORDER.search(strip_comment(line)) is not None
        if not uses:
            covered = False
            continue
        ok = (
            ORDER_COMMENT.search(line)
            or any(ORDER_COMMENT.search(lines[i])
                   for i in range(max(0, ln - 3), ln - 1))
            or covered  # contiguous run under one comment
        )
        if not ok:
            findings.append(
                f"{path.relative_to(REPO)}:{ln}: memory-order-comments: "
                f"non-default memory_order needs a `// order:` comment on "
                f"this line or within the 2 lines above")
        covered = bool(ok)


def check_standalone_headers(findings: list[str]) -> None:
    headers = sorted(SRC.rglob("*.hpp"))
    for h in headers:
        r = subprocess.run(
            ["g++", "-std=c++20", "-fsyntax-only", "-I", str(SRC), str(h)],
            capture_output=True, text=True)
        if r.returncode != 0:
            first = (r.stderr.strip().splitlines() or ["unknown error"])[0]
            findings.append(
                f"{h.relative_to(REPO)}:1: standalone-headers: header does "
                f"not compile on its own: {first}")


def main() -> int:
    findings: list[str] = []
    for path in sorted(SRC.rglob("*")):
        if path.suffix not in (".hpp", ".cpp"):
            continue
        lines = path.read_text().splitlines()
        check_bare_assert(path, lines, findings)
        check_memory_order(path, lines, findings)
    check_standalone_headers(findings)
    for f in findings:
        print(f)
    print(f"lint_checks: {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
