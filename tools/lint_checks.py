#!/usr/bin/env python3
"""Repo lint checks (wired into the CI lint job).

Three rules over src/:

1. no-bare-assert: `assert(...)` is compiled out by -DNDEBUG in release
   builds, which is exactly where scheme bugs bite. Invariants must use
   CATS_CHECK (src/check/check.hpp), which stays on and formats a message.
   (`static_assert` is fine.)

2. memory-order-comments: every non-default std::memory_order argument must
   carry a `// order:` comment on the same line or within the two lines
   above (a comment covers a contiguous run of atomic lines below it), so
   the pairing that justifies the relaxation is written down where it can
   rot visibly. A comment block counts: the `// order:` head of a
   contiguous `//` block governs uses up to two code lines below the
   block. The comment must also *name* every order it covers
   (order-comment-mismatch): a `// order: relaxed ...` note over an
   acquire load is a stale justification, which is worse than none.
   src/analysis/ is exempt — the model checker manipulates memory orders
   as first-class *data* (weakening lattices, per-site overrides, name
   tables); those mentions are not relaxations to justify.

3. standalone-headers: every src/**/*.hpp must compile on its own
   (g++ -std=c++20 -fsyntax-only -I src), so headers keep their includes
   and no header silently depends on its inclusion context.

Exit status 0 = clean, 1 = findings (printed as file:line: rule: message).
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

BARE_ASSERT = re.compile(r"(?<![_\w])assert\s*\(")
MEMORY_ORDER = re.compile(
    r"memory_order_(relaxed|acquire|release|acq_rel|consume)")
ORDER_COMMENT = re.compile(r"//\s*order:")
LINE_COMMENT = re.compile(r"//.*$")


def strip_comment(line: str) -> str:
    return LINE_COMMENT.sub("", line)


def check_bare_assert(path: Path, lines: list[str], findings: list[str]) -> None:
    for ln, line in enumerate(lines, 1):
        code = strip_comment(line)
        if "static_assert" in code:
            code = code.replace("static_assert", "")
        if BARE_ASSERT.search(code):
            findings.append(
                f"{path.relative_to(REPO)}:{ln}: no-bare-assert: use "
                f"CATS_CHECK (check/check.hpp); assert() vanishes under "
                f"-DNDEBUG")


def order_comment_text(line: str) -> str | None:
    m = ORDER_COMMENT.search(line)
    return line[m.start():] if m else None


def is_comment_line(line: str) -> bool:
    return line.lstrip().startswith("//")


def governing_comment(lines: list[str], ln: int) -> str | None:
    """The `// order:` comment governing the use at 1-indexed `ln`: on the
    line itself, or heading a contiguous comment block that ends within two
    code lines above it (the block's full text is returned so multi-line
    justifications count for the mismatch check)."""
    t = order_comment_text(lines[ln - 1])
    if t:
        return t
    i = ln - 2
    code_steps = 0
    while i >= 0 and code_steps < 2:
        if is_comment_line(lines[i]):
            j = i
            while j >= 0 and is_comment_line(lines[j]):
                j -= 1
            block = "\n".join(lines[j + 1:i + 1])
            m = ORDER_COMMENT.search(block)
            return block[m.start():] if m else None
        i -= 1
        code_steps += 1
    return None


def check_memory_order(path: Path, lines: list[str],
                       findings: list[str]) -> None:
    governing: str | None = None  # comment text covering a contiguous run
    for ln, line in enumerate(lines, 1):
        orders = MEMORY_ORDER.findall(strip_comment(line))
        if not orders:
            governing = None
            continue
        comment = governing_comment(lines, ln)
        if comment is None:
            comment = governing  # contiguous run under one comment
        if comment is None:
            findings.append(
                f"{path.relative_to(REPO)}:{ln}: memory-order-comments: "
                f"non-default memory_order needs a `// order:` comment on "
                f"this line or within the 2 lines above")
            continue
        governing = comment
        missing = sorted(
            o for o in set(orders)
            if not re.search(rf"\b{o}\b", comment))
        if missing:
            findings.append(
                f"{path.relative_to(REPO)}:{ln}: order-comment-mismatch: "
                f"`// order:` comment does not name "
                f"{'/'.join(missing)} used on this line — stale "
                f"justification?")


def check_standalone_headers(findings: list[str]) -> None:
    headers = sorted(SRC.rglob("*.hpp"))
    for h in headers:
        r = subprocess.run(
            ["g++", "-std=c++20", "-fsyntax-only", "-I", str(SRC), str(h)],
            capture_output=True, text=True)
        if r.returncode != 0:
            first = (r.stderr.strip().splitlines() or ["unknown error"])[0]
            findings.append(
                f"{h.relative_to(REPO)}:1: standalone-headers: header does "
                f"not compile on its own: {first}")


def main() -> int:
    findings: list[str] = []
    for path in sorted(SRC.rglob("*")):
        if path.suffix not in (".hpp", ".cpp"):
            continue
        lines = path.read_text().splitlines()
        check_bare_assert(path, lines, findings)
        if (SRC / "analysis") not in path.parents:
            check_memory_order(path, lines, findings)
    check_standalone_headers(findings)
    for f in findings:
        print(f)
    print(f"lint_checks: {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
