// cats_analyze — static concurrency & footprint verifier CLI (DESIGN.md §15).
//
// Modes:
//   --mc           exhaustively model-check the five sync primitives at
//                  production memory orders (zero missing happens-before
//                  edges under every interleaving)
//   --minimality   weaken each annotated order site one step and re-verify;
//                  report safe weakenings (over-strong annotations) vs.
//                  counterexamples (order proven minimal)
//   --footprint    symbolic kernel access analysis: record every load/store
//                  of each kernel family under each scheme x option config
//                  and certify halo containment, alignment, NT eligibility,
//                  and buffer-parity non-aliasing against the emitted plans
//   --sweep        all of the above (the CI entry point)
//
// Exit codes mirror cats_plan_check: 0 = verified, 1 = counterexample /
// violation found, 2 = usage or internal error (including exploration cap
// exceeded — a cap is never a silent pass).

#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/footprint.hpp"
#include "analysis/protocols.hpp"
#include "analysis/weak_memory.hpp"

namespace {

using namespace cats::analysis;

void print_trace(const std::vector<std::string>& trace) {
  for (const auto& line : trace) std::printf("      %s\n", line.c_str());
}

int run_mc(bool verbose) {
  std::printf("== model check: sync primitives at production orders ==\n");
  int bad = 0;
  for (const auto& pc : check_all_primitives()) {
    const auto& r = pc.result;
    if (!r.error.empty()) {
      std::printf("  ERROR %-28s %s\n", pc.scenario.c_str(),
                  r.error.c_str());
      ++bad;
      continue;
    }
    if (r.has_cex()) {
      std::printf("  FAIL  %-28s %s\n", pc.scenario.c_str(),
                  r.cex.front().reason.c_str());
      print_trace(r.cex.front().trace);
      ++bad;
      continue;
    }
    std::printf("  ok    %-28s %lld executions (%lld pruned, depth %d)\n",
                pc.scenario.c_str(), r.executions, r.pruned, r.max_depth);
  }
  (void)verbose;
  if (bad) std::printf("model check: %d scenario(s) FAILED\n", bad);
  return bad ? 1 : 0;
}

int run_minimality(bool verbose) {
  std::printf("== minimality: one-step order weakenings per site ==\n");
  int errors = 0;
  int safe = 0;
  int minimal = 0;
  for (const auto& f : minimality_sweep()) {
    const char* tag = f.strengthening ? "audit" : "weaken";
    if (!f.error.empty()) {
      std::printf("  ERROR %s %s.%s %s->%s: %s\n", tag, f.prim, f.site,
                  mo_name(f.prod), mo_name(f.varied), f.error.c_str());
      ++errors;
      continue;
    }
    if (f.safe) {
      ++safe;
      if (f.strengthening) {
        std::printf(
            "  ok    audit  %s.%s passes at historical %s "
            "(production %s is the documented downgrade)\n",
            f.prim, f.site, mo_name(f.varied), mo_name(f.prod));
      } else {
        std::printf(
            "  NOTE  %s.%s: %s weakens safely to %s over the checked "
            "scenarios (candidate downgrade; see pin_latch.hpp for the "
            "applied ones)\n",
            f.prim, f.site, mo_name(f.prod), mo_name(f.varied));
      }
      continue;
    }
    ++minimal;
    std::printf("  ok    %s %s.%s: %s -> %s refuted: %s\n", tag, f.prim,
                f.site, mo_name(f.prod), mo_name(f.varied),
                f.cex_reason.c_str());
    if (verbose) print_trace(f.cex_trace);
  }
  std::printf(
      "minimality: %d site-weakenings refuted (orders minimal), "
      "%d safe, %d errors\n",
      minimal, safe, errors);
  return errors ? 2 : 0;
}

int run_footprint(bool verbose) {
  std::printf("== footprint: symbolic kernel access analysis ==\n");
  const auto reports = footprint_sweep();
  int bad = 0;
  long long loads = 0;
  long long stores = 0;
  for (const auto& rep : reports) {
    loads += rep.loads;
    stores += rep.stores;
    if (!rep.diags.empty()) {
      ++bad;
      std::printf("  FAIL  %s\n", rep.config.c_str());
      for (const auto& d : rep.diags)
        std::printf("      %s\n", d.message.c_str());
      continue;
    }
    if (verbose)
      std::printf("  ok    %s (%lld loads, %lld stores, %lld NT)\n",
                  rep.config.c_str(), rep.loads, rep.stores, rep.nt_stores);
  }
  std::printf(
      "footprint: %zu configs, %lld loads + %lld stores certified, "
      "%d config(s) FAILED\n",
      reports.size(), loads, stores, bad);
  return bad ? 1 : 0;
}

void usage() {
  std::printf(
      "usage: cats_analyze [--mc] [--minimality] [--footprint] [--sweep] "
      "[--verbose]\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool mc = false;
  bool minimality = false;
  bool footprint = false;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--mc")) {
      mc = true;
    } else if (!std::strcmp(argv[i], "--minimality")) {
      minimality = true;
    } else if (!std::strcmp(argv[i], "--footprint")) {
      footprint = true;
    } else if (!std::strcmp(argv[i], "--sweep")) {
      mc = minimality = footprint = true;
    } else if (!std::strcmp(argv[i], "--verbose")) {
      verbose = true;
    } else {
      usage();
      return 2;
    }
  }
  if (!mc && !minimality && !footprint) {
    usage();
    return 2;
  }
  int rc = 0;
  auto merge = [&rc](int r) {
    if (r > rc) rc = r;
  };
  if (mc) merge(run_mc(verbose));
  if (minimality) merge(run_minimality(verbose));
  if (footprint) merge(run_footprint(verbose));
  if (rc == 0) std::printf("cats_analyze: all checks passed\n");
  return rc;
}
