#!/usr/bin/env python3
"""Compare two bench_suite reports (BENCH_5.json) and fail on perf regression.

Usage: bench_compare.py BASELINE.json NEW.json [--tolerance 0.15]

Both files are `bench_suite --json` outputs: one table of
(kernel, config, secs, MLUP/s, model B/pt, scheme) rows at a pinned size.

Raw MLUP/s is not comparable across machines (or across CI runners), so each
row is first normalized by the same file's naive row for that kernel —
"CATS2+wave is 2.1x naive" is a property of the code, not the machine. A row
regresses when its normalized throughput drops more than --tolerance (15%
default) below the baseline. The model B/pt column is compared exactly
(tolerance 1%): the analytic traffic model is deterministic, so any drift
there is a real accounting change, not noise.

Exit status: 0 clean, 1 regression(s), 2 malformed input.
"""

import argparse
import json
import sys


def load_rows(path):
    """-> {(kernel, config): (mlups, model_bpp)}"""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    for table in doc.get("tables", []):
        headers = table.get("headers", [])
        if "MLUP/s" not in headers or "config" not in headers:
            continue
        ik = headers.index("kernel")
        ic = headers.index("config")
        im = headers.index("MLUP/s")
        ib = headers.index("model B/pt")
        rows = {}
        for r in table.get("rows", []):
            rows[(r[ik], r[ic])] = (float(r[im]), float(r[ib]))
        if rows:
            return rows
    print(f"bench_compare: no bench_suite table in {path}", file=sys.stderr)
    sys.exit(2)


def normalized(rows):
    """MLUP/s of each row divided by its kernel's naive row (1.0 if absent)."""
    out = {}
    for (kernel, config), (mlups, bpp) in rows.items():
        naive = rows.get((kernel, "naive"), (0.0, 0.0))[0]
        out[(kernel, config)] = (mlups / naive if naive > 0 else 0.0, bpp)
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional drop in normalized MLUP/s")
    args = ap.parse_args()

    base = normalized(load_rows(args.baseline))
    new = normalized(load_rows(args.new))

    failures = []
    print(f"{'kernel':<10} {'config':<12} {'base(rel)':>10} {'new(rel)':>10} "
          f"{'delta':>8}  {'B/pt':>6}")
    for key in sorted(base):
        if key not in new:
            failures.append(f"{key[0]}/{key[1]}: row missing from new report")
            continue
        b_rel, b_bpp = base[key]
        n_rel, n_bpp = new[key]
        delta = (n_rel - b_rel) / b_rel if b_rel > 0 else 0.0
        flag = ""
        if b_rel > 0 and n_rel < b_rel * (1.0 - args.tolerance):
            failures.append(
                f"{key[0]}/{key[1]}: normalized MLUP/s {n_rel:.3f} < "
                f"{b_rel:.3f} - {args.tolerance:.0%}")
            flag = "  << REGRESSION"
        if b_bpp > 0 and abs(n_bpp - b_bpp) / b_bpp > 0.01:
            failures.append(
                f"{key[0]}/{key[1]}: model B/pt changed {b_bpp} -> {n_bpp}")
            flag = "  << MODEL CHANGE"
        print(f"{key[0]:<10} {key[1]:<12} {b_rel:>10.3f} {n_rel:>10.3f} "
              f"{delta:>+7.1%}  {n_bpp:>6.2f}{flag}")

    if failures:
        print(f"\n{len(failures)} regression(s) vs {args.baseline}:",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
