#!/usr/bin/env python3
"""Compare two bench_suite reports (BENCH_10.json) and fail on perf regression.

Usage: bench_compare.py BASELINE.json NEW.json [--tolerance 0.15]

Each file is either one `bench_suite --json` output or a JSON *array* of
several (one per thread count — CI runs the suite at THREADS=1 and
THREADS=2 and merges the reports). Every report carries one table of
(kernel, config, secs, MLUP/s, model B/pt, scheme) rows at a pinned size,
plus a "threads" context entry keying its comparison group.

Raw MLUP/s is not comparable across machines (or across CI runners), so each
row is first normalized by the same report's naive row for that kernel —
"CATS2+wave is 2.1x naive" is a property of the code, not the machine. Rows
are grouped per precision (the kernel name's `_f32` suffix) AND per thread
count: every fp32 family carries its own naive/plain anchors, and a
multi-thread row only ever normalizes against the naive row measured at the
same thread count (thread scaling is part of what the suite tracks, e.g.
MWD's shared-diamond groups only exist at THREADS>=2). The cross-precision
fp32/fp64 speedup is reported separately per config (informational —
raw-throughput ratios are noisier than normalized ones, so they do not
gate). A row regresses when its normalized throughput drops more than
--tolerance (15% default) below the baseline. The model B/pt column is
compared exactly (tolerance 1%): the analytic traffic model is
deterministic, so any drift there is a real accounting change, not noise —
in particular the fp32 rows must model element size E=4, half the fp64
bytes per point.

Exit status: 0 clean, 1 regression(s), 2 malformed input.
"""

import argparse
import json
import sys


def table_rows(report, path, rows):
    """Merge one report object's bench table into rows keyed by
    (kernel, config, threads)."""
    threads = int(report.get("context", {}).get("threads", 1))
    for table in report.get("tables", []):
        headers = table.get("headers", [])
        if "MLUP/s" not in headers or "config" not in headers:
            continue
        ik = headers.index("kernel")
        ic = headers.index("config")
        im = headers.index("MLUP/s")
        ib = headers.index("model B/pt")
        for r in table.get("rows", []):
            rows[(r[ik], r[ic], threads)] = (float(r[im]), float(r[ib]))


def load_rows(path):
    """-> {(kernel, config, threads): (mlups, model_bpp)}"""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    rows = {}
    for report in doc if isinstance(doc, list) else [doc]:
        table_rows(report, path, rows)
    if not rows:
        print(f"bench_compare: no bench_suite table in {path}", file=sys.stderr)
        sys.exit(2)
    return rows


def precision_of(kernel):
    return "fp32" if kernel.endswith("_f32") else "fp64"


def normalized(rows):
    """MLUP/s of each row divided by its kernel's naive row at the same
    thread count (1.0 if absent).

    The naive anchor is always the same kernel — hence the same precision —
    and the same thread count, so normalized ratios never mix precisions or
    parallelism levels.
    """
    out = {}
    for (kernel, config, threads), (mlups, bpp) in rows.items():
        naive = rows.get((kernel, "naive", threads), (0.0, 0.0))[0]
        out[(kernel, config, threads)] = (
            mlups / naive if naive > 0 else 0.0, bpp)
    return out


def compare_group(base, new, keys, tolerance, failures):
    for key in sorted(keys):
        if key not in new:
            failures.append(
                f"{key[0]}/{key[1]}@t{key[2]}: row missing from new report")
            continue
        b_rel, b_bpp = base[key]
        n_rel, n_bpp = new[key]
        delta = (n_rel - b_rel) / b_rel if b_rel > 0 else 0.0
        flag = ""
        if b_rel > 0 and n_rel < b_rel * (1.0 - tolerance):
            failures.append(
                f"{key[0]}/{key[1]}@t{key[2]}: normalized MLUP/s "
                f"{n_rel:.3f} < {b_rel:.3f} - {tolerance:.0%}")
            flag = "  << REGRESSION"
        if b_bpp > 0 and abs(n_bpp - b_bpp) / b_bpp > 0.01:
            failures.append(
                f"{key[0]}/{key[1]}@t{key[2]}: model B/pt changed "
                f"{b_bpp} -> {n_bpp}")
            flag = "  << MODEL CHANGE"
        print(f"{key[0]:<12} {key[1]:<12} {b_rel:>10.3f} {n_rel:>10.3f} "
              f"{delta:>+7.1%}  {n_bpp:>6.2f}{flag}")


def print_precision_ratios(raw, label):
    """fp32/fp64 raw-throughput ratio per (base kernel, config, threads)."""
    pairs = sorted({(k[:-4], c, t) for (k, c, t) in raw if k.endswith("_f32")})
    lines = []
    for kernel, config, threads in pairs:
        f32 = raw.get((kernel + "_f32", config, threads), (0.0, 0.0))[0]
        f64 = raw.get((kernel, config, threads), (0.0, 0.0))[0]
        if f32 > 0 and f64 > 0:
            lines.append(f"  {kernel}/{config}@t{threads}: {f32 / f64:.2f}x")
    if lines:
        print(f"\nfp32/fp64 raw speedup ({label}, informational):")
        for line in lines:
            print(line)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional drop in normalized MLUP/s")
    args = ap.parse_args()

    base_raw = load_rows(args.baseline)
    new_raw = load_rows(args.new)
    base = normalized(base_raw)
    new = normalized(new_raw)

    failures = []
    header = (f"{'kernel':<12} {'config':<12} {'base(rel)':>10} "
              f"{'new(rel)':>10} {'delta':>8}  {'B/pt':>6}")
    thread_counts = sorted({k[2] for k in base})
    for threads in thread_counts:
        for precision in ("fp64", "fp32"):
            keys = [k for k in base
                    if precision_of(k[0]) == precision and k[2] == threads]
            if not keys:
                continue
            print(f"-- {precision} @ {threads} thread(s) --")
            print(header)
            compare_group(base, new, keys, args.tolerance, failures)
            print()

    print_precision_ratios(new_raw, "new")

    if failures:
        print(f"\n{len(failures)} regression(s) vs {args.baseline}:",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
