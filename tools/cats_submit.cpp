// cats_submit: client for the cats_served stencil service.
//
//   cats_submit --socket /tmp/cats.sock submit --kernel const2d \
//       --nx 256 --ny 256 -T 32 [--selftest]
//   cats_submit stats | ping | shutdown [--cancel]
//
// submit prints the server's one-line JSON result. --selftest additionally
// runs the same job in-process and compares grid checksums — the wire-level
// bit-exactness check the CI smoke job relies on (exit 1 on mismatch).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/client.hpp"
#include "serve/exec.hpp"
#include "serve/protocol.hpp"

namespace {

const char* kUsage =
    "usage: cats_submit [--socket PATH] <command> [options]\n"
    "commands:\n"
    "  submit   --kernel const2d|const3d --nx N --ny N [--nz N] -T N\n"
    "           [--tenant NAME] [--seed N] [--threads N] [--scheme S]\n"
    "           [--split auto|never|force] [--nt-stores] [--selftest]\n"
    "  stats    print the server's scheduler statistics (JSON)\n"
    "  ping     check liveness\n"
    "  shutdown [--cancel]  drain (or cancel+drain) the server\n";

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "cats_submit: %s\n", msg.c_str());
  std::exit(1);
}

std::string default_socket() {
  if (const char* p = std::getenv("CATS_SERVE_SOCKET")) return p;
  return "/tmp/cats_served.sock";
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = default_socket();
  std::string command;
  cats::serve::JobRequest job;
  bool selftest = false;
  bool cancel = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) die(a + " needs a value\n" + kUsage);
      return argv[++i];
    };
    if (a == "--socket") {
      socket_path = next();
    } else if (a == "--kernel") {
      job.kernel = next();
    } else if (a == "--tenant") {
      job.tenant = next();
    } else if (a == "--nx") {
      job.nx = std::atoll(next());
    } else if (a == "--ny") {
      job.ny = std::atoll(next());
    } else if (a == "--nz") {
      job.nz = std::atoll(next());
    } else if (a == "-T" || a == "--timesteps") {
      job.t_steps = std::atoi(next());
    } else if (a == "--seed") {
      job.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (a == "--threads") {
      job.threads = std::atoi(next());
    } else if (a == "--scheme") {
      if (!cats::serve::parse_scheme(next(), &job.scheme))
        die("unknown scheme");
    } else if (a == "--split") {
      const std::string s = next();
      if (s == "auto") {
        job.split = cats::serve::JobRequest::Split::Auto;
      } else if (s == "never") {
        job.split = cats::serve::JobRequest::Split::Never;
      } else if (s == "force") {
        job.split = cats::serve::JobRequest::Split::Force;
      } else {
        die("unknown split policy");
      }
    } else if (a == "--nt-stores") {
      job.nt_stores = true;
    } else if (a == "--selftest") {
      selftest = true;
    } else if (a == "--cancel") {
      cancel = true;
    } else if (a == "--help" || a == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (!a.empty() && a[0] != '-' && command.empty()) {
      command = a;
    } else {
      die("unknown option " + a + "\n" + kUsage);
    }
  }
  if (command.empty()) die(std::string("no command\n") + kUsage);

  cats::serve::Client client;
  std::string err;
  if (!client.connect(socket_path, &err)) die(err);

  if (command == "ping") {
    if (!client.ping(&err)) die(err);
    std::puts("pong");
    return 0;
  }
  if (command == "stats") {
    std::string json;
    if (!client.stats(&json, &err)) die(err);
    std::puts(json.c_str());
    return 0;
  }
  if (command == "shutdown") {
    if (!client.shutdown_server(cancel, &err)) die(err);
    std::puts(cancel ? "cancelling" : "draining");
    return 0;
  }
  if (command != "submit") die("unknown command " + command + "\n" + kUsage);

  if (!cats::serve::validate_job(job, &err)) die(err);
  const std::optional<cats::serve::JobResult> r = client.submit(job, &err);
  if (!r.has_value()) die(err);
  std::puts(cats::serve::encode_result(*r).c_str());
  if (r->status != cats::serve::JobStatus::Done) return 1;

  if (selftest) {
    // Local replay of the same request: the server's checksum must match
    // bit for bit regardless of sharding/batching decisions on its side.
    cats::serve::ExecEnv env;
    env.threads = job.threads > 0 ? job.threads : 1;
    cats::serve::JobRequest local = job;
    local.split = cats::serve::JobRequest::Split::Never;
    const cats::serve::JobResult mine =
        cats::serve::execute_job(local, env);
    if (mine.status != cats::serve::JobStatus::Done)
      die("selftest local run failed: " + mine.error);
    if (mine.checksum != r->checksum) {
      std::fprintf(stderr,
                   "cats_submit: SELFTEST MISMATCH server=%016llx "
                   "local=%016llx\n",
                   static_cast<unsigned long long>(r->checksum),
                   static_cast<unsigned long long>(mine.checksum));
      return 1;
    }
    std::fprintf(stderr, "cats_submit: selftest ok (checksum %016llx)\n",
                 static_cast<unsigned long long>(r->checksum));
  }
  return 0;
}
