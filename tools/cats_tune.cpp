// cats_tune: calibrate this machine and empirically tune CATS parameters.
//
// For each requested kernel the tool seeds a neighborhood search with the
// analytic Eq. 1/2/CATS3 configuration, times short pilot runs over the
// candidate grid, prints the full ranking, and persists the winner in the
// tuning database. Subsequent runs with RunOptions::tuning = UseDb (or the
// bench binaries' --tune db) pick the entry up automatically.
//
//   $ cats_tune                         # calibrate + tune const2d and const3d
//   $ cats_tune --kernel banded2d --side 1024 --t 64
//   $ cats_tune --db /tmp/tune.json --no-calibrate
//
// Options:
//   --kernel NAME   const2d | const3d | banded2d | fdtd2d | all
//                   (repeatable; default: const2d, const3d)
//   --side N        domain side length (default: ~8x the calibrated cache)
//   --t T           timesteps the production runs will use (default 100)
//   --threads N     worker threads (default: hardware concurrency)
//   --db PATH       tuning DB file (default: $CATS_TUNE_DB or
//                   ~/.cache/cats/tune.json)
//   --pilot-t N     timesteps per pilot run (default 16)
//   --reps N        pilots per candidate, minimum kept (default 2)
//   --no-calibrate  skip the cache/slack calibration micro-benchmarks
//   --json PATH     also write the report as JSON (bench_harness JsonLog)

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "bench_harness/report.hpp"
#include "core/run.hpp"
#include "kernels/banded2d.hpp"
#include "kernels/const2d.hpp"
#include "kernels/const3d.hpp"
#include "kernels/fdtd2d.hpp"
#include "tune/calibrate.hpp"
#include "tune/tuner.hpp"

using namespace cats;
using namespace cats::bench;

namespace {

struct Args {
  std::vector<std::string> kernels;
  int side = 0;  // 0 = derive from calibrated cache
  int t = 100;
  int threads = 0;  // 0 = hardware concurrency
  std::string db_path;
  int pilot_t = 16;
  int reps = 2;
  bool calibrate = true;
};

bool parse_args(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--kernel") {
      const char* v = value();
      if (!v) return false;
      if (std::strcmp(v, "all") == 0) {
        a.kernels = {"const2d", "const3d", "banded2d", "fdtd2d"};
      } else {
        a.kernels.emplace_back(v);
      }
    } else if (flag == "--side") {
      const char* v = value();
      if (!v || (a.side = std::atoi(v)) <= 0) return false;
    } else if (flag == "--t") {
      const char* v = value();
      if (!v || (a.t = std::atoi(v)) <= 0) return false;
    } else if (flag == "--threads") {
      const char* v = value();
      if (!v || (a.threads = std::atoi(v)) <= 0) return false;
    } else if (flag == "--db") {
      const char* v = value();
      if (!v) return false;
      a.db_path = v;
    } else if (flag == "--pilot-t") {
      const char* v = value();
      if (!v || (a.pilot_t = std::atoi(v)) <= 0) return false;
    } else if (flag == "--reps") {
      const char* v = value();
      if (!v || (a.reps = std::atoi(v)) <= 0) return false;
    } else if (flag == "--no-calibrate") {
      a.calibrate = false;
    } else if (flag == "--json") {
      const char* v = value();
      if (!v) return false;
      json_log().enable(v);
    } else {
      std::cerr << "unknown option: " << flag << "\n";
      return false;
    }
  }
  if (a.kernels.empty()) a.kernels = {"const2d", "const3d"};
  return true;
}

std::string fmt_candidate(const tune::Candidate& c) {
  std::string s = tune::candidate_scheme_name(c);
  if (c.scheme == Scheme::Cats1) s += " TZ=" + std::to_string(c.tz);
  if (c.scheme == Scheme::Cats2) s += " BZ=" + std::to_string(c.bz);
  if (c.scheme == Scheme::Cats3)
    s += " BZ=" + std::to_string(c.bz) + " BX=" + std::to_string(c.bx);
  if (c.threads > 0) s += " P=" + std::to_string(c.threads);
  if (c.affinity >= 0)
    s += std::string(" pin=") +
         affinity_policy_name(static_cast<AffinityPolicy>(c.affinity));
  return s;
}

void report_result(const tune::TuneResult& res, double n_points, int pilot_t,
                   double flops_per_point) {
  Table table({"candidate", "pilot[s]", "GFLOPS", "vs analytic"});
  for (const tune::Measured& m : res.all) {
    table.add_row(
        {fmt_candidate(m.cand), fmt_fixed(m.seconds, 4),
         fmt_fixed(n_points * pilot_t * flops_per_point / m.seconds / 1e9, 2),
         fmt_fixed(res.analytic_seconds / m.seconds, 2) + "x"});
  }
  table.print(std::cout);
  std::cout << "best: " << fmt_candidate(res.best) << "  ("
            << fmt_fixed(res.analytic_seconds / res.best_seconds, 2)
            << "x the analytic seed)\n\n";
}

template <class MakeKernel>
void tune_one(const std::string& name, MakeKernel&& make, double flops_pp,
              const Args& args, const RunOptions& base) {
  auto probe = make();
  const double n_points = static_cast<double>(domain_shape(probe).n);
  std::cout << "-- " << name << " (" << kernel_tuning_id(probe) << ", shape "
            << tune::shape_bucket(domain_shape(probe)) << ", threads "
            << base.threads << ") --\n";

  tune::TuneConfig cfg;
  cfg.pilot_t = args.pilot_t;
  cfg.reps = args.reps;
  const tune::TuneResult res =
      tune::search_and_store(make, args.t, base, args.db_path, cfg);
  report_result(res, n_points, std::min(args.pilot_t, args.t), flops_pp);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    std::cerr << "usage: cats_tune [--kernel NAME]... [--side N] [--t T]"
                 " [--threads N] [--db PATH] [--pilot-t N] [--reps N]"
                 " [--no-calibrate] [--json PATH]\n";
    return 2;
  }

  print_banner(std::cout, "cats_tune: empirical CATS parameter tuning");

  RunOptions base;
  base.threads = args.threads > 0
                     ? args.threads
                     : std::max(1u, std::thread::hardware_concurrency());
  if (args.db_path.empty()) args.db_path = tune::TuneDb::default_path();
  std::cout << "tuning db: " << args.db_path << "\n";

  int side2d = args.side;
  int side3d = args.side;
  if (args.calibrate) {
    const tune::Calibration cal = tune::calibrate_machine();
    std::cout << "calibration: nominal cache " << fmt_mib(cal.nominal_cache_bytes)
              << ", effective " << fmt_mib(cal.effective_cache_bytes) << " ("
              << fmt_fixed(100.0 * cal.usable_fraction, 0)
              << "% usable), memory bw "
              << fmt_fixed(cal.memory_bw_gbps, 1) << " GB/s, suggested slack "
              << fmt_fixed(cal.suggested_cs_slack, 1) << "\n\n";
    base.cache_bytes = cal.effective_cache_bytes;
    base.cs_slack = cal.suggested_cs_slack;
    json_log().add_scalar("effective_cache_bytes",
                          static_cast<double>(cal.effective_cache_bytes));
    json_log().add_scalar("suggested_cs_slack", cal.suggested_cs_slack);
  } else {
    std::cout << "\n";
  }
  if (side2d == 0) {
    // Default pilot domains: comfortably past the cache (so time skewing is
    // exercised) but quick enough for a dozen pilots.
    const double doubles =
        static_cast<double>(resolve_cache_bytes(base)) / 8.0;
    side2d = std::min(4096, static_cast<int>(std::sqrt(32.0 * doubles)));
    side3d = std::min(320, static_cast<int>(std::cbrt(32.0 * doubles)));
  }

  for (const std::string& name : args.kernels) {
    if (name == "const2d") {
      const int s = side2d;
      tune_one(name, [s] {
        ConstStar2D<1> k(s, s, default_star2d_weights<1>());
        k.init([](int x, int y) { return 0.01 * x + 0.02 * y; }, 1.0);
        return k;
      }, 9.0, args, base);
    } else if (name == "const3d") {
      const int s = side3d;
      tune_one(name, [s] {
        ConstStar3D<1> k(s, s, s, default_star3d_weights<1>());
        k.init([](int x, int y, int z) {
          return 0.01 * x + 0.02 * y + 0.03 * z;
        }, 0.0);
        return k;
      }, 13.0, args, base);
    } else if (name == "banded2d") {
      const int s = side2d;
      tune_one(name, [s] {
        Banded2D<1> k(s, s);
        k.init([](int x, int y) { return 0.01 * x + 0.02 * y; }, 0.0);
        k.init_bands([](int b, int x, int y) {
          return b == 0 ? 0.5 : 0.125 + 1e-4 * ((b + x + y) % 7);
        });
        return k;
      }, 9.0, args, base);
    } else if (name == "fdtd2d") {
      const int s = side2d;
      tune_one(name, [s] {
        Fdtd2D k(s, s);
        k.init([](int x, int y) {
          return std::tuple{0.01 * x, 0.01 * y, 0.02 * (x + y)};
        });
        return k;
      }, 17.0, args, base);
    } else {
      std::cerr << "unknown kernel '" << name
                << "' (try const2d, const3d, banded2d, fdtd2d)\n";
      return 2;
    }
  }

  std::cout << "entries persisted to " << args.db_path
            << "; use RunOptions::tuning = Tuning::UseDb (benches: --tune db)"
               " to apply them.\n";
  return 0;
}
