// cats_plan_check: emit a scheme's static tile plan and verify it without
// executing anything.
//
// Every scheme first emits its schedule as a TilePlan (src/plan) and then
// walks it; this tool runs the same emission for an arbitrary configuration
// and hands the plan to the static verifier (plan/verify.hpp): dependence
// coverage (symbolic happens-before over the tile DAG), cache-residency
// certification (wavefront working set vs Z, Eq. 1 / Eq. 2 conformance) and
// progress (resolvable waits, acyclic sync graph, full domain coverage).
//
//   $ cats_plan_check --scheme cats2 --dims 2 --nx 2048 --ny 2048 --t 64
//   $ cats_plan_check --sweep              # CI: ~1000 configurations
//
// Cost scales with the plan's slab count (domain volume x timesteps / tile
// size), not with points: the 2048^2 x 64 example above checks ~58M halo
// pairs in ~10 s; the CI sweep's ~1000 small configurations take < 1 s.
//
// Options:
//   --scheme S       auto | naive | cats1 | cats2 | cats3 | mwd | pluto
//                    (default auto)
//   --dims D         1 | 2 | 3 (default 2)
//   --nx/--ny/--nz   domain extents (defaults 256/256/256 as applicable)
//   --t T            timesteps (default 32)
//   --slope S        stencil slope (default 1)
//   --threads N      worker threads (default 4)
//   --cache-bytes Z  per-thread cache budget; 0 = detect (default 32768)
//   --cs-eff C       effective CS' per point (default 2.8 = 2s + 0.8, s=1)
//   --tz/--bz/--bx   parameter overrides (disable residency certification)
//   --mwd-group G    MWD thread-group width (threads/G diamond columns)
//   --strict         treat warnings as failures
//   --dump           print every tile and sync edge of the plan
//   --sweep          verify the built-in configuration grid and exit
//
// Exit status: 0 = all plans verified, 1 = a verification error (or, with
// --strict, a warning), 2 = usage error.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/run.hpp"
#include "plan/emit.hpp"
#include "plan/verify.hpp"

using namespace cats;
using namespace cats::plan_ir;

namespace {

struct Args {
  Scheme scheme = Scheme::Auto;
  int dims = 2;
  std::int64_t nx = 0, ny = 0, nz = 0;  // 0 = default for dims
  int T = 32;
  int slope = 1;
  int threads = 4;
  long long cache_bytes = 32768;
  double cs_eff = 2.8;
  int tz = 0;
  long long bz = 0, bx = 0;
  int mwd_group = 0;
  bool strict = false;
  bool dump = false;
  bool sweep = false;
};

bool parse_scheme(const std::string& s, Scheme& out) {
  if (s == "auto") out = Scheme::Auto;
  else if (s == "naive") out = Scheme::Naive;
  else if (s == "cats1") out = Scheme::Cats1;
  else if (s == "cats2") out = Scheme::Cats2;
  else if (s == "cats3") out = Scheme::Cats3;
  else if (s == "mwd") out = Scheme::Mwd;
  else if (s == "pluto") out = Scheme::PlutoLike;
  else return false;
  return true;
}

bool parse_args(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](long long& out) {
      if (i + 1 >= argc) return false;
      out = std::atoll(argv[++i]);
      return true;
    };
    long long v = 0;
    if (arg == "--scheme" && i + 1 < argc) {
      if (!parse_scheme(argv[++i], a.scheme)) return false;
    } else if (arg == "--dims" && next(v)) {
      a.dims = static_cast<int>(v);
    } else if (arg == "--nx" && next(v)) {
      a.nx = v;
    } else if (arg == "--ny" && next(v)) {
      a.ny = v;
    } else if (arg == "--nz" && next(v)) {
      a.nz = v;
    } else if (arg == "--t" && next(v)) {
      a.T = static_cast<int>(v);
    } else if (arg == "--slope" && next(v)) {
      a.slope = static_cast<int>(v);
    } else if (arg == "--threads" && next(v)) {
      a.threads = static_cast<int>(v);
    } else if (arg == "--cache-bytes" && next(v)) {
      a.cache_bytes = v;
    } else if (arg == "--cs-eff" && i + 1 < argc) {
      a.cs_eff = std::atof(argv[++i]);
    } else if (arg == "--tz" && next(v)) {
      a.tz = static_cast<int>(v);
    } else if (arg == "--bz" && next(v)) {
      a.bz = v;
    } else if (arg == "--bx" && next(v)) {
      a.bx = v;
    } else if (arg == "--mwd-group" && next(v)) {
      a.mwd_group = static_cast<int>(v);
    } else if (arg == "--strict") {
      a.strict = true;
    } else if (arg == "--dump") {
      a.dump = true;
    } else if (arg == "--sweep") {
      a.sweep = true;
    } else {
      std::fprintf(stderr, "unknown or incomplete option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

PlanRequest make_request(const Args& a) {
  PlanRequest rq;
  rq.dims = a.dims;
  rq.nx = a.nx > 0 ? a.nx : 256;
  rq.ny = a.dims >= 2 ? (a.ny > 0 ? a.ny : 256) : 1;
  rq.nz = a.dims >= 3 ? (a.nz > 0 ? a.nz : 256) : 1;
  rq.T = a.T;
  rq.slope = a.slope;
  rq.cs_eff = a.cs_eff;
  rq.opt.scheme = a.scheme;
  rq.opt.threads = a.threads;
  rq.opt.cache_bytes = static_cast<std::size_t>(a.cache_bytes);
  rq.opt.tz_override = a.tz;
  rq.opt.bz_override = static_cast<int>(a.bz);
  rq.opt.bx_override = static_cast<int>(a.bx);
  rq.opt.mwd_group = a.mwd_group;
  return rq;
}

void dump_plan(const TilePlan& p) {
  std::printf("plan: scheme=%s dims=%d domain=%lldx%lldx%lld T=%d s=%d "
              "threads=%d phases=%d tz=%d bz=%lld bx=%lld\n",
              scheme_name(p.scheme), p.dims, static_cast<long long>(p.nx),
              static_cast<long long>(p.ny), static_cast<long long>(p.nz), p.T,
              p.slope, p.threads, p.phases, p.tz,
              static_cast<long long>(p.bz), static_cast<long long>(p.bx));
  for (std::size_t i = 0; i < p.tiles.size(); ++i) {
    const Tile& t = p.tiles[i];
    std::printf(
        "  tile %4zu owner=%d phase=%d kind=%d t=[%d,%d] u=%lld tau=[%lld,"
        "%lld] d=(%lld,%lld) q=%lld base=[%lld,%lld]x[%lld,%lld]x[%lld,%lld]"
        "%s%s\n",
        i, t.owner, t.phase, static_cast<int>(t.kind), t.t0, t.t1,
        static_cast<long long>(t.u), static_cast<long long>(t.tau_lo),
        static_cast<long long>(t.tau_hi), static_cast<long long>(t.di),
        static_cast<long long>(t.dj), static_cast<long long>(t.q),
        static_cast<long long>(t.base.xlo), static_cast<long long>(t.base.xhi),
        static_cast<long long>(t.base.ylo), static_cast<long long>(t.base.yhi),
        static_cast<long long>(t.base.zlo), static_cast<long long>(t.base.zhi),
        t.publishes_progress ? " +progress" : "",
        t.publishes_done ? " +done" : "");
  }
  for (const SyncEdge& e : p.edges) {
    std::printf("  edge %d -> %d %s %lld\n", e.from, e.to,
                e.kind == SyncEdge::Kind::Done ? "done" : "progress>=",
                static_cast<long long>(e.value));
  }
}

/// Verify one configuration; print diagnostics on failure. Returns true when
/// the plan is acceptable (no errors; no warnings either under strict).
bool check_one(const PlanRequest& rq, bool strict, bool verbose,
               VerifyStats* acc) {
  const TilePlan p = emit_plan(rq);
  const VerifyReport rep = verify_plan(p);
  if (acc != nullptr) {
    acc->tiles += rep.stats.tiles;
    acc->slabs += rep.stats.slabs;
    acc->edges += rep.stats.edges;
    acc->dep_pairs_checked += rep.stats.dep_pairs_checked;
  }
  const bool fail = rep.errors() > 0 || (strict && rep.warnings() > 0);
  if (fail || verbose) {
    std::printf("%s dims=%d %lldx%lldx%lld T=%d s=%d threads=%d Z=%zu "
                "(emitted %s): %s\n",
                fail ? "FAIL" : "ok", rq.dims,
                static_cast<long long>(rq.nx), static_cast<long long>(rq.ny),
                static_cast<long long>(rq.nz), rq.T, rq.slope,
                rq.opt.threads, rq.opt.cache_bytes, scheme_name(p.scheme),
                rep.summary().c_str());
    for (const Diag& d : rep.diags) {
      std::printf("  %s\n", d.to_string().c_str());
    }
  }
  return !fail;
}

int run_sweep(bool strict) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<PlanRequest> grid;
  const Scheme schemes1[] = {Scheme::Auto, Scheme::Naive, Scheme::Cats1,
                             Scheme::Cats2, Scheme::PlutoLike};
  const Scheme schemes[] = {Scheme::Auto,  Scheme::Naive, Scheme::Cats1,
                            Scheme::Cats2, Scheme::Cats3, Scheme::Mwd,
                            Scheme::PlutoLike};
  const int slopes[] = {1, 2};
  const int ts[] = {3, 13};
  // Degenerate 256 B caches drive the selector through its clamp floors;
  // 1 MiB with tiny domains drives the INT_MAX/huge-TZ end.
  const std::size_t caches1[] = {2048, 32768, 1u << 20};
  const std::size_t caches[] = {256, 4096, 65536};

  for (const Scheme sc : schemes1) {
    for (const std::int64_t nx : {17, 64}) {
      for (const int T : ts) {
        for (const int s : slopes) {
          for (const int th : {1, 2, 5}) {
            for (const std::size_t z : caches1) {
              PlanRequest rq;
              rq.dims = 1;
              rq.nx = nx;
              rq.T = T;
              rq.slope = s;
              rq.cs_eff = 2.0 * s + 0.8;
              rq.opt.scheme = sc;
              rq.opt.threads = th;
              rq.opt.cache_bytes = z;
              grid.push_back(rq);
            }
          }
        }
      }
    }
  }
  for (const Scheme sc : schemes) {
    for (const auto& [nx, ny] :
         {std::pair<std::int64_t, std::int64_t>{40, 28}, {64, 48}}) {
      for (const int T : {4, 12}) {
        for (const int s : slopes) {
          for (const int th : {1, 2, 4}) {
            for (const std::size_t z : caches) {
              PlanRequest rq;
              rq.dims = 2;
              rq.nx = nx;
              rq.ny = ny;
              rq.T = T;
              rq.slope = s;
              rq.cs_eff = 2.0 * s + 0.8;
              rq.opt.scheme = sc;
              rq.opt.threads = th;
              rq.opt.cache_bytes = z;
              grid.push_back(rq);
              // Grouped MWD variants: the plan shrinks to th/g diamond
              // columns, the residency certificate moves to the pooled Z*g.
              if (sc == Scheme::Mwd) {
                for (const int g : {2, 4}) {
                  if (g <= th && th % g == 0) {
                    rq.opt.mwd_group = g;
                    grid.push_back(rq);
                  }
                }
                rq.opt.mwd_group = 0;
              }
            }
          }
        }
      }
    }
  }
  for (const Scheme sc : schemes) {
    for (const int T : {4, 12}) {
      for (const int s : slopes) {
        for (const int th : {1, 2, 4}) {
          for (const std::size_t z : caches) {
            PlanRequest rq;
            rq.dims = 3;
            rq.nx = 16;
            rq.ny = 12;
            rq.nz = 14;
            rq.T = T;
            rq.slope = s;
            rq.cs_eff = 2.0 * s + 0.8;
            rq.opt.scheme = sc;
            rq.opt.threads = th;
            rq.opt.cache_bytes = z;
            grid.push_back(rq);
            if (sc == Scheme::Mwd) {
              for (const int g : {2, 4}) {
                if (g <= th && th % g == 0) {
                  rq.opt.mwd_group = g;
                  grid.push_back(rq);
                }
              }
              rq.opt.mwd_group = 0;
            }
          }
        }
      }
    }
  }

  VerifyStats acc;
  std::size_t failures = 0;
  for (const PlanRequest& rq : grid) {
    if (!check_one(rq, strict, false, &acc)) ++failures;
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::printf("sweep: %zu configurations, %lld tiles, %lld slabs, %lld sync "
              "edges, %lld dep pairs in %.2f s -> %zu failure(s)\n",
              grid.size(), static_cast<long long>(acc.tiles),
              static_cast<long long>(acc.slabs),
              static_cast<long long>(acc.edges),
              static_cast<long long>(acc.dep_pairs_checked), secs, failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse_args(argc, argv, a)) return 2;
  if (a.sweep) return run_sweep(a.strict);
  if (a.dims < 1 || a.dims > 3) {
    std::fprintf(stderr, "--dims must be 1, 2 or 3\n");
    return 2;
  }
  const PlanRequest rq = make_request(a);
  if (a.dump) dump_plan(emit_plan(rq));
  return check_one(rq, a.strict, true, nullptr) ? 0 : 1;
}
