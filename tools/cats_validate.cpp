// cats_validate: drive every scheme over tiny 1D/2D/3D probe configurations
// with the dependence oracle attached and fail (exit 1) on any violated
// dependence. This is the CI schedule-correctness smoke: it validates the
// *schedules* (visit order, tile hand-offs, publish/wait edges, barriers) at
// full per-point precision using no-op kernels, so it runs in milliseconds.
//
// Usage: cats_validate [threads...]   (default: 1 4)
//        cats_validate --env-smoke    (real kernels, CATS_VALIDATE env path:
//                                      run() attaches the oracle itself and
//                                      aborts on any violation)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "baseline/cache_oblivious.hpp"
#include "check/oracle.hpp"
#include "check/probe_kernel.hpp"
#include "core/run.hpp"
#include "kernels/const1d.hpp"
#include "kernels/const2d.hpp"
#include "kernels/const3d.hpp"

namespace {

int g_failures = 0;

void report(const char* label, int threads, cats::check::DepOracle& oracle,
            int T) {
  oracle.check_complete(T);
  if (oracle.ok()) {
    std::printf("ok   %-28s p=%d  points=%lld edges=%zu\n", label, threads,
                static_cast<long long>(oracle.points_checked()),
                oracle.edges().size());
    return;
  }
  ++g_failures;
  std::printf("FAIL %-28s p=%d  %lld violations\n", label, threads,
              static_cast<long long>(oracle.violation_count()));
  oracle.print_report(stdout);
}

cats::RunOptions base_options(int threads, cats::Scheme scheme,
                              cats::check::DepOracle* oracle) {
  cats::RunOptions opt;
  opt.threads = threads;
  opt.scheme = scheme;
  opt.cache_bytes = 32 * 1024;  // deterministic selection, tiny tiles
  opt.oracle = oracle;
  // Small tiles so even these tiny domains split into several tiles and the
  // cross-tile hand-offs actually run.
  opt.tz_override = 4;
  opt.bz_override = 8;
  opt.bx_override = 8;
  return opt;
}

void validate_1d(cats::Scheme scheme, const char* label, int threads, int T) {
  cats::check::ProbeKernel1D k(64, 1);
  cats::check::DepOracle oracle(k.width(), 1, 1, k.slope(), threads);
  cats::run(k, T, base_options(threads, scheme, &oracle));
  report(label, threads, oracle, T);
}

void validate_2d(cats::Scheme scheme, const char* label, int threads, int T) {
  cats::check::ProbeKernel2D k(32, 48, 1);
  cats::check::DepOracle oracle(k.width(), k.height(), 1, k.slope(), threads);
  cats::run(k, T, base_options(threads, scheme, &oracle));
  report(label, threads, oracle, T);
}

void validate_3d(cats::Scheme scheme, const char* label, int threads, int T) {
  cats::check::ProbeKernel3D k(16, 24, 24, 1);
  cats::check::DepOracle oracle(k.width(), k.height(), k.depth(), k.slope(),
                                threads);
  cats::run(k, T, base_options(threads, scheme, &oracle));
  report(label, threads, oracle, T);
}

void validate_cache_oblivious(int T) {
  {
    cats::check::ProbeKernel1D k(64, 1);
    cats::check::DepOracle oracle(k.width(), 1, 1, k.slope(), 1);
    cats::run_cache_oblivious(k, T, &oracle);
    report("cache-oblivious 1D", 1, oracle, T);
  }
  {
    cats::check::ProbeKernel2D k(32, 48, 1);
    cats::check::DepOracle oracle(k.width(), k.height(), 1, k.slope(), 1);
    cats::run_cache_oblivious(k, T, &oracle);
    report("cache-oblivious 2D", 1, oracle, T);
  }
  {
    cats::check::ProbeKernel3D k(16, 24, 24, 1);
    cats::check::DepOracle oracle(k.width(), k.height(), k.depth(), k.slope(),
                                  1);
    cats::run_cache_oblivious(k, T, &oracle);
    report("cache-oblivious 3D", 1, oracle, T);
  }
}

// Real Jacobi kernels through the CATS_VALIDATE environment path: run()
// attaches its own oracle and aborts with a report on any violation, so
// merely returning from these runs is the pass criterion.
int env_smoke() {
  if (!cats::check::validate_env_enabled()) {
    std::fprintf(stderr,
                 "cats_validate --env-smoke requires CATS_VALIDATE=1 in the "
                 "environment\n");
    return 2;
  }
  const int T = 8;
  cats::RunOptions opt;
  opt.threads = 4;
  opt.cache_bytes = 32 * 1024;
  {
    cats::ConstStar1D<1>::Weights w;
    w.center = 0.5;
    w.xm[0] = w.xp[0] = 0.25;
    cats::ConstStar1D<1> k(96, w);
    k.init([](int x) { return 0.001 * x; });
    for (cats::Scheme s :
         {cats::Scheme::Naive, cats::Scheme::Cats1, cats::Scheme::PlutoLike}) {
      opt.scheme = s;
      cats::run(k, T, opt);
      std::printf("ok   env-smoke %s 1D\n", cats::scheme_name(s));
    }
  }
  {
    cats::ConstStar2D<1> k(24, 32, cats::default_star2d_weights<1>());
    k.init([](int x, int y) { return 0.01 * x - 0.02 * y; }, 0.25);
    for (cats::Scheme s : {cats::Scheme::Naive, cats::Scheme::Cats1,
                           cats::Scheme::Cats2, cats::Scheme::PlutoLike}) {
      opt.scheme = s;
      cats::run(k, T, opt);
      std::printf("ok   env-smoke %s 2D\n", cats::scheme_name(s));
    }
  }
  {
    cats::ConstStar3D<1> k(12, 16, 16, cats::default_star3d_weights<1>());
    k.init([](int x, int y, int z) { return 0.01 * x + 0.02 * y - 0.03 * z; },
           0.125);
    for (cats::Scheme s :
         {cats::Scheme::Naive, cats::Scheme::Cats1, cats::Scheme::Cats2,
          cats::Scheme::Cats3, cats::Scheme::PlutoLike}) {
      opt.scheme = s;
      cats::run(k, T, opt);
      std::printf("ok   env-smoke %s 3D\n", cats::scheme_name(s));
    }
  }
  std::printf("cats_validate: env-smoke clean\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--env-smoke") == 0) {
    return env_smoke();
  }
  std::vector<int> thread_counts;
  for (int i = 1; i < argc; ++i) {
    const int p = std::atoi(argv[i]);
    if (p > 0) thread_counts.push_back(p);
  }
  if (thread_counts.empty()) thread_counts = {1, 4};

  const int T = 12;
  for (const int p : thread_counts) {
    validate_1d(cats::Scheme::Naive, "naive 1D", p, T);
    validate_1d(cats::Scheme::Cats1, "CATS1 1D", p, T);
    validate_1d(cats::Scheme::PlutoLike, "pluto-like 1D", p, T);

    validate_2d(cats::Scheme::Naive, "naive 2D", p, T);
    validate_2d(cats::Scheme::Cats1, "CATS1 2D", p, T);
    validate_2d(cats::Scheme::Cats2, "CATS2 2D", p, T);
    validate_2d(cats::Scheme::PlutoLike, "pluto-like 2D", p, T);

    validate_3d(cats::Scheme::Naive, "naive 3D", p, T);
    validate_3d(cats::Scheme::Cats1, "CATS1 3D", p, T);
    validate_3d(cats::Scheme::Cats2, "CATS2 3D", p, T);
    validate_3d(cats::Scheme::Cats3, "CATS3 3D", p, T);
    validate_3d(cats::Scheme::PlutoLike, "pluto-like 3D", p, T);
  }
  validate_cache_oblivious(T);

  if (g_failures > 0) {
    std::printf("cats_validate: %d configuration(s) FAILED\n", g_failures);
    return 1;
  }
  std::printf("cats_validate: all configurations clean\n");
  return 0;
}
