// Quickstart: apply a 5-point stencil to a 2D domain 100 times with CATS.
//
// The library mirrors the paper's interface: you provide a kernel (which owns
// its data and knows its slope, here a prebuilt one) and the run options
// (threads, cache size); cats::run() picks CATS1 or CATS2 via Eq. 1/2 and
// executes the time-skewed sweep.
//
//   $ ./example_quickstart [side] [T]

#include <cstdlib>
#include <iostream>

#include "bench_harness/timing.hpp"
#include "core/run.hpp"
#include "kernels/const2d.hpp"

int main(int argc, char** argv) {
  const int side = argc > 1 ? std::atoi(argv[1]) : 2048;
  const int T = argc > 2 ? std::atoi(argv[2]) : 100;

  // A smoothing stencil: u' = 0.5*u + 0.125*(left+right+up+down).
  cats::ConstStar2D<1>::Weights w;
  w.center = 0.5;
  w.xm[0] = w.xp[0] = w.ym[0] = w.yp[0] = 0.125;
  cats::ConstStar2D<1> kernel(side, side, w);

  cats::RunOptions opt;        // defaults: detected L2 cache, Auto scheme
  opt.threads = 2;

  // Hot square in the middle of a cold domain, cold (0) boundary.
  // parallel_init first-touches each buffer with the same thread/slab
  // partition the run uses, so on NUMA machines pages land near the threads
  // that sweep them (plain init() works too, just without that placement).
  kernel.parallel_init(
      opt,
      [&](int x, int y) {
        const bool hot = std::abs(x - side / 2) < side / 8 &&
                         std::abs(y - side / 2) < side / 8;
        return hot ? 100.0 : 0.0;
      },
      /*boundary=*/0.0);

  cats::bench::Timer timer;
  const cats::SchemeChoice used = cats::run(kernel, T, opt);
  const double secs = timer.seconds();

  const double n = static_cast<double>(side) * side;
  std::cout << "domain " << side << "x" << side << ", T=" << T << "\n"
            << "scheme: " << cats::scheme_name(used.scheme)
            << (used.scheme == cats::Scheme::Cats1
                    ? " (chunk height TZ=" + std::to_string(used.tz) + ")"
                    : " (diamond width BZ=" + std::to_string(used.bz) + ")")
            << "\n"
            << "time: " << secs << " s  ("
            << n * T * kernel.flops_per_point() / secs / 1e9 << " GFLOPS)\n";

  // Peek at the result: heat has diffused outward from the center.
  const auto& g = kernel.grid_at(T);
  std::cout << "center=" << g.at(side / 2, side / 2)
            << "  quarter=" << g.at(side / 4, side / 4)
            << "  corner=" << g.at(1, 1) << "\n";
  return 0;
}
