// FDTD waveguide: propagate an electromagnetic pulse in a 2D cavity with the
// fused FDTD kernel under CATS, and print a coarse ASCII rendering of |hz| so
// you can see the wave physically spreading — a sanity check that time
// skewing changes the schedule, not the physics.
//
//   $ ./example_fdtd_waveguide [side] [T]

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <tuple>

#include "bench_harness/timing.hpp"
#include "core/run.hpp"
#include "kernels/fdtd2d.hpp"

namespace {

void render(const cats::Grid2D<double>& hz, int side) {
  const char* shades = " .:-=+*#%@";
  const int rows = 24, cols = 48;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int y = r * side / rows, x = c * side / cols;
      double m = 0.0;
      for (int dy = 0; dy < side / rows; dy += 4)
        for (int dx = 0; dx < side / cols; dx += 4)
          m = std::max(m, std::fabs(hz.at(x + dx, y + dy)));
      const int level = std::min(9, static_cast<int>(m * 12.0));
      std::cout << shades[level];
    }
    std::cout << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int side = argc > 1 ? std::atoi(argv[1]) : 1024;
  const int T = argc > 2 ? std::atoi(argv[2]) : 200;

  cats::RunOptions opt;
  opt.threads = 2;

  cats::Fdtd2D k(side, side);
  // NUMA-aware first touch of all six field buffers (same slab partition
  // the run uses).
  k.parallel_init(opt, [side](int x, int y) {
    const double dx = (x - side / 2) * 8.0 / side;
    const double dy = (y - side / 2) * 8.0 / side;
    return std::tuple{0.0, 0.0, std::exp(-(dx * dx + dy * dy))};
  });

  cats::bench::Timer timer;
  const auto used = cats::run(k, T, opt);
  const double secs = timer.seconds();
  const double n = static_cast<double>(side) * side;

  std::cout << "2D FDTD " << side << "^2, T=" << T << ", scheme "
            << cats::scheme_name(used.scheme) << ", " << secs << " s ("
            << n * T / secs / 1e9 << " giga updates/s)\n\n";
  std::cout << "|hz| after " << T << " steps (pulse expanded into a ring):\n";
  render(k.hz_at(T), side);
  return 0;
}
