// 3D heat diffusion: the workload class the paper's introduction motivates
// (iterative PDE solvers on domains far larger than cache). Runs the same
// problem with the naive scheme and with CATS and reports the speedup —
// demonstrating that the result is identical while the time is not.
//
//   $ ./example_heat3d [side] [T]

#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_harness/timing.hpp"
#include "core/run.hpp"
#include "kernels/const3d.hpp"

namespace {

cats::ConstStar3D<1> make_problem(int side, const cats::RunOptions& opt) {
  // Forward-Euler heat equation: u' = (1-6a)*u + a*(6 neighbors), a = 0.1.
  cats::ConstStar3D<1>::Weights w;
  w.center = 1.0 - 6.0 * 0.1;
  w.xm[0] = w.xp[0] = w.ym[0] = w.yp[0] = w.zm[0] = w.zp[0] = 0.1;
  cats::ConstStar3D<1> k(side, side, side, w);
  // NUMA-aware first touch: pages are placed by the same thread/slab
  // partition the run below uses.
  k.parallel_init(
      opt,
      [&](int x, int y, int z) {
        // A hot ball around the center.
        const double dx = x - side / 2.0, dy = y - side / 2.0,
                     dz = z - side / 2.0;
        return (dx * dx + dy * dy + dz * dz < side * side / 64.0) ? 100.0 : 0.0;
      },
      0.0);
  return k;
}

}  // namespace

int main(int argc, char** argv) {
  const int side = argc > 1 ? std::atoi(argv[1]) : 192;
  const int T = argc > 2 ? std::atoi(argv[2]) : 50;
  const double n = static_cast<double>(side) * side * side;
  std::cout << "3D heat equation, " << side << "^3 doubles ("
            << n * 8 / 1e6 << " MB per buffer), T=" << T << "\n";

  double naive_secs = 0.0;
  std::vector<double> naive_result;
  {
    cats::RunOptions opt;
    opt.scheme = cats::Scheme::Naive;
    opt.threads = 2;
    auto k = make_problem(side, opt);
    cats::bench::Timer timer;
    cats::run(k, T, opt);
    naive_secs = timer.seconds();
    k.copy_result_to(naive_result, T);
    std::cout << "naive: " << naive_secs << " s\n";
  }
  {
    cats::RunOptions opt;  // Auto
    opt.threads = 2;
    auto k = make_problem(side, opt);
    cats::bench::Timer timer;
    const auto used = cats::run(k, T, opt);
    const double secs = timer.seconds();
    std::vector<double> result;
    k.copy_result_to(result, T);
    std::cout << "CATS (" << cats::scheme_name(used.scheme) << "): " << secs
              << " s  -> " << naive_secs / secs << "x speedup\n";
    std::cout << "results identical: "
              << (result == naive_result ? "yes (bit-exact)" : "NO — BUG")
              << "\n";
  }
  return 0;
}
