// Banded-matrix Jacobi iteration: solve A u = b for a variable-coefficient
// 2D Poisson-type operator by running the Jacobi update as a 5-band variable
// stencil under CATS — the paper's Section III-B workload in its natural
// application. Prints the residual decline so you can watch convergence.
//
// Jacobi: u_{k+1} = D^{-1} (b - (A - D) u_k). With the row-wise update
// folded into band coefficients c0..c4 plus a constant term, one sweep is
// exactly a 5-band stencil application. We keep b = 0 and watch u -> 0 for
// a diagonally dominant A (contraction), measuring sweep throughput.
//
//   $ ./example_banded_jacobi [side] [sweeps]

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_harness/timing.hpp"
#include "core/run.hpp"
#include "kernels/banded2d.hpp"

int main(int argc, char** argv) {
  const int side = argc > 1 ? std::atoi(argv[1]) : 1024;
  const int sweeps = argc > 2 ? std::atoi(argv[2]) : 120;

  // Variable diffusion coefficient kappa(x, y) in [1, 2]: A is the 5-point
  // finite-volume Poisson matrix; the Jacobi iteration matrix has bands
  // c_neighbor = kappa_face / diag, c_center = 0 (classic Jacobi) — we use
  // weighted Jacobi (omega = 0.8) so c_center = 1 - omega.
  auto kappa = [](double x, double y) {
    return 1.5 + 0.5 * std::sin(0.01 * x) * std::cos(0.013 * y);
  };
  const double omega = 0.8;

  cats::RunOptions opt;
  opt.threads = 2;

  cats::Banded2D<1> k(side, side);
  // parallel_init first-touches the field buffers with the run's own
  // thread/slab partition (NUMA page placement); bands stay serially placed.
  k.parallel_init(opt, [&](int x, int y) {
    return std::sin(0.05 * x) * std::sin(0.07 * y);  // initial guess
  }, 0.0);
  k.init_bands([&](int b, int x, int y) {
    const double kw = kappa(x - 0.5, y), ke = kappa(x + 0.5, y);
    const double ks = kappa(x, y - 0.5), kn = kappa(x, y + 0.5);
    const double diag = kw + ke + ks + kn;
    switch (b) {
      case 0: return 1.0 - omega;           // center
      case 1: return omega * kw / diag;     // x-1
      case 2: return omega * ke / diag;     // x+1
      case 3: return omega * ks / diag;     // y-1
      default: return omega * kn / diag;    // y+1
    }
  });

  auto norm = [&](int t) {
    const auto& g = k.grid_at(t);
    double s = 0.0;
    for (int y = 0; y < side; ++y)
      for (int x = 0; x < side; ++x) s += g.at(x, y) * g.at(x, y);
    return std::sqrt(s / (static_cast<double>(side) * side));
  };

  std::cout << "weighted Jacobi on a " << side << "^2 variable-coefficient "
            << "Poisson operator (5-band matrix)\n";
  std::cout << "initial ||u|| = " << norm(0) << "\n";

  cats::bench::Timer timer;
  // Run in stages so we can report the contraction (each stage is itself a
  // time-skewed CATS run over `stage` sweeps). Stages are even so each stage
  // ends with the live field back in buffer parity 0, where the next run()
  // expects its t=0 data.
  const int stage = std::max(2, (sweeps / 4) & ~1);
  int done = 0;
  for (int s = 0; s < 4; ++s) {
    const auto used = cats::run(k, stage, opt);
    done += stage;
    std::cout << "after " << done << " sweeps (" << cats::scheme_name(used.scheme)
              << "): ||u|| = " << norm(stage) << "\n";
    // NOTE: grid parity is per-run; norm uses the stage's final parity.
  }
  const double secs = timer.seconds();
  const double n = static_cast<double>(side) * side;
  std::cout << "throughput: " << n * done / secs / 1e9
            << " giga row-updates/s over " << done << " sweeps ("
            << secs << " s)\n";
  return 0;
}
