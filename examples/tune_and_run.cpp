// Tune once, run fast forever: the empirical-autotuning workflow.
//
// Pass 1 searches the neighborhood of the analytic Eq. 1/2 parameters with
// short pilot runs and persists the winner in a tuning database keyed by
// machine x kernel x domain shape. Pass 2 is an ordinary production run with
// RunOptions::tuning = UseDb: Scheme::Auto consults the database before the
// formulas, so the tuned tile sizes apply with zero search cost.
//
//   $ ./example_tune_and_run [side] [T] [db.json]

#include <cstdlib>
#include <iostream>

#include "bench_harness/timing.hpp"
#include "core/run.hpp"
#include "kernels/const2d.hpp"
#include "tune/tuner.hpp"

int main(int argc, char** argv) {
  const int side = argc > 1 ? std::atoi(argv[1]) : 1536;
  const int T = argc > 2 ? std::atoi(argv[2]) : 100;
  const std::string db = argc > 3 ? argv[3] : "tune_and_run.db.json";

  auto make = [&] {
    cats::ConstStar2D<1> k(side, side, cats::default_star2d_weights<1>());
    k.init([](int x, int y) { return 0.01 * x + 0.02 * y; }, 0.0);
    return k;
  };

  cats::RunOptions opt;  // detected cache, Auto scheme
  opt.threads = 2;

  // Pass 1: pilot search around the analytic seed, persisted to `db`.
  cats::tune::TuneConfig cfg;
  cfg.budget_seconds = 10.0;
  const cats::tune::TuneResult r =
      cats::tune::search_and_store(make, T, opt, db, cfg);
  std::cout << "searched " << r.all.size() << " candidates; best "
            << r.entry.scheme << " tz=" << r.entry.tz << " bz=" << r.entry.bz
            << "  (pilot " << r.best_seconds << " s vs analytic "
            << r.analytic_seconds << " s)\n";

  // Pass 2: a normal run that picks the stored winner up from the database.
  opt.tuning = cats::Tuning::UseDb;
  opt.tuning_db_path = db.c_str();
  auto kernel = make();
  cats::bench::Timer timer;
  const cats::SchemeChoice used = cats::run(kernel, T, opt);
  std::cout << "production run: " << cats::scheme_name(used.scheme)
            << " tz=" << used.tz << " bz=" << used.bz << " in "
            << timer.seconds() << " s  (db: " << db << ")\n";
  return 0;
}
