// In-place SOR Poisson solver under time skewing.
//
// Demonstrates the paper's one-copy remark: Gauss-Seidel-type kernels keep a
// single copy of the domain, and the *serial* CATS1 wavefront still delivers
// the temporal-locality win (many sweeps per DRAM pass) — the library
// detects the kernel's same-timestep dependencies and refuses to split-tile
// it (see kernels/gauss_seidel2d.hpp).
//
// Problem: Laplace u = 0 on a square, u = 1 on the boundary, u = 0 inside;
// SOR drives the interior to 1. We compare wall time of the same number of
// sweeps under Scheme::Naive (one sweep per DRAM pass) and CATS.
//
//   $ ./example_sor_poisson [side] [sweeps]

#include <cstdlib>
#include <iostream>

#include "bench_harness/timing.hpp"
#include "core/run.hpp"
#include "kernels/gauss_seidel2d.hpp"

namespace {

cats::GaussSeidel2D make_problem(int side) {
  cats::GaussSeidel2D::Weights w;  // symmetric Laplace, omega = 1.7
  w.relax = 1.7;
  cats::GaussSeidel2D k(side, side, w);
  k.init([](int, int) { return 0.0; }, /*boundary=*/1.0);
  return k;
}

// Probe near the boundary: SOR information travels only a few cells per
// sweep, so the domain center stays untouched for a while on big grids.
double probe_error(const cats::GaussSeidel2D& k) {
  return 1.0 - k.grid().at(8, 8);
}

}  // namespace

int main(int argc, char** argv) {
  const int side = argc > 1 ? std::atoi(argv[1]) : 2048;
  const int sweeps = argc > 2 ? std::atoi(argv[2]) : 60;
  const double n = static_cast<double>(side) * side;
  std::cout << "SOR (omega=1.7) on Laplace, " << side << "^2 in-place ("
            << n * 8 / 1e6 << " MB, ONE copy), " << sweeps << " sweeps\n";

  double naive_secs = 0.0;
  {
    auto k = make_problem(side);
    cats::RunOptions opt;
    opt.scheme = cats::Scheme::Naive;
    cats::bench::Timer timer;
    cats::run(k, sweeps, opt);
    naive_secs = timer.seconds();
    std::cout << "naive sweeps:       " << naive_secs << " s, probe error "
              << probe_error(k) << "\n";
  }
  {
    auto k = make_problem(side);
    cats::RunOptions opt;  // Auto -> serial CATS1 (forced by the kernel)
    opt.threads = 4;       // ignored: sequential-deps kernels serialize
    cats::bench::Timer timer;
    const auto used = cats::run(k, sweeps, opt);
    const double secs = timer.seconds();
    std::cout << "CATS (" << cats::scheme_name(used.scheme)
              << ", TZ=" << used.tz << "): " << secs
              << " s, probe error " << probe_error(k) << "  -> "
              << naive_secs / secs << "x speedup, same iterates\n";
  }
  std::cout << "note: identical error at equal sweeps — time skewing changes "
               "the schedule, not the math.\n"
               "(SOR's x-recurrence is latency-bound, so unlike the Jacobi "
               "kernels there is little DRAM\ntime to recover here; the "
               "example demonstrates in-place one-copy time skewing, not "
               "speedup.)\n";
  return 0;
}
