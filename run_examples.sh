#!/bin/sh
# Smoke-run every example with small arguments (used by CI / final checks).
set -e
./build/examples/example_quickstart 1024 50
./build/examples/example_heat3d 128 30
./build/examples/example_fdtd_waveguide 512 120
./build/examples/example_banded_jacobi 512 80
./build/examples/example_sor_poisson 1024 40
